//! In-database observability: the engine-wide telemetry registry.
//!
//! Every layer of the engine reports into one [`Telemetry`] registry —
//! statement lifecycle timings split by phase (parse / sema / plan / exec),
//! per-operator rollups from `EXPLAIN ANALYZE` runs, WAL append/fsync/
//! checkpoint activity, statement timeouts, and per-model BornSQL serving
//! metrics. The registry is lock-cheap: counters and histograms are plain
//! relaxed atomics (the same discipline as the executor's `StageCounter`);
//! only the query-log ring buffer and the per-model map take a mutex, once
//! per statement, far from any per-row loop.
//!
//! Nothing here is exposed through a side API. The registry is queryable
//! *in SQL* through the virtual `sys.*` tables ([`sys`]), which the planner
//! materializes as point-in-time row snapshots flowing through the ordinary
//! scan → filter → project pipeline.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::exec::OpStats;
use crate::trace::{StatementTrace, WaitTotals};

/// A monotonically increasing event counter (relaxed atomics: totals are
/// exact, ordering between counters is not guaranteed — fine for metrics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raise the counter to `v` if it is below it (peak/max trackers).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of log-scale latency buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` microseconds (bucket 0 also takes sub-microsecond
/// samples), so 28 buckets span 1µs to ~2.2 minutes.
pub const HIST_BUCKETS: usize = 28;

/// A fixed-bucket log-scale latency histogram over microseconds.
///
/// Recording is two relaxed `fetch_add`s plus a `fetch_max` — no locking,
/// no allocation — so it is safe on the serving hot path. Percentiles are
/// estimated from the bucket counts by linear interpolation inside the
/// target bucket, clamped to the largest recorded sample; raw bucket counts
/// are exported through `sys.histograms` so any percentile is recomputable
/// in SQL.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    /// Sum of all recorded samples, µs (for exact means).
    sum_us: AtomicU64,
    /// Largest recorded sample, µs.
    max_us: AtomicU64,
}

impl Histogram {
    fn bucket_of(us: u64) -> usize {
        (63 - u64::leading_zeros(us.max(1)) as usize).min(HIST_BUCKETS - 1)
    }

    pub fn record_micros(&self, us: u64) {
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    pub fn record(&self, d: Duration) {
        self.record_micros(d.as_micros() as u64);
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    pub fn sum_micros(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    pub fn max_micros(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    pub fn mean_micros(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_micros() as f64 / n as f64
        }
    }

    /// Snapshot of the raw bucket counts (bucket `i` covers
    /// `[bucket_lo_us(i), bucket_lo_us(i + 1))`).
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Inclusive lower bound of bucket `i` in microseconds (0 for the first
    /// bucket, which also absorbs sub-microsecond samples).
    pub fn bucket_lo_us(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// Exclusive upper bound of bucket `i` in microseconds (the top bucket
    /// is open-ended; this is its nominal boundary).
    pub fn bucket_hi_us(i: usize) -> u64 {
        1u64 << (i + 1).min(63)
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) in microseconds: linear
    /// interpolation of the target sample's rank inside its bucket, clamped
    /// to the largest recorded sample so the estimate can never exceed any
    /// observed value (attributing every sample to its bucket's upper bound
    /// overshot by up to 2×).
    pub fn percentile_micros(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let lo = Self::bucket_lo_us(i) as f64;
                let hi = Self::bucket_hi_us(i) as f64;
                let frac = (target - (cum - c)) as f64 / c as f64;
                let est = lo + frac * (hi - lo);
                return est.min(self.max_micros().max(1) as f64);
            }
        }
        self.max_micros() as f64
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum_us.store(0, Ordering::Relaxed);
        self.max_us.store(0, Ordering::Relaxed);
    }
}

/// Terminal status of one recorded statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    Ok,
    Error,
    /// The statement exceeded `EngineConfig::statement_timeout`.
    Timeout,
}

impl QueryStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            QueryStatus::Ok => "ok",
            QueryStatus::Error => "error",
            QueryStatus::Timeout => "timeout",
        }
    }
}

/// One entry of the `sys.query_log` ring buffer.
#[derive(Debug, Clone)]
pub struct QueryLogEntry {
    /// Monotonic statement id (never reused, survives ring eviction).
    pub id: u64,
    /// Statement text, truncated to [`MAX_LOGGED_SQL`] bytes.
    pub sql: String,
    pub status: QueryStatus,
    /// Error text for failed statements.
    pub error: Option<String>,
    /// Whether the plan cache served the physical plan.
    pub cache_hit: bool,
    /// Whether total duration exceeded `EngineConfig::slow_query_threshold`.
    pub slow: bool,
    pub parse_us: u64,
    pub sema_us: u64,
    pub plan_us: u64,
    pub exec_us: u64,
    pub total_us: u64,
    /// Rows returned (queries) or affected (DML).
    pub rows: u64,
    /// Peak bytes charged against the statement's memory budget (cumulative
    /// materialized operator state; 0 for statements that broke no pipeline).
    pub peak_mem_bytes: u64,
    /// Time queued behind the admission gate, backfilled from the
    /// statement's trace (`None` when the statement ran untraced).
    pub queue_wait_us: Option<u64>,
    /// Time waiting on WAL fsyncs, backfilled from the statement's trace
    /// (`None` when the statement ran untraced).
    pub fsync_wait_us: Option<u64>,
    /// WAL write retries observed while this statement ran, backfilled from
    /// the statement's trace (`None` when the statement ran untraced).
    pub retry_count: Option<u64>,
}

/// Statement text stored in the query log is truncated to this many bytes
/// (on a char boundary) so the ring holds a bounded amount of memory.
pub const MAX_LOGGED_SQL: usize = 512;

/// Per-operator rollup accumulated from `EXPLAIN ANALYZE` stats trees.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpAgg {
    /// Operator invocations (stats-tree nodes) observed.
    pub calls: u64,
    pub rows_out: u64,
    pub nanos: u64,
}

/// Serving metrics of one BornSQL model, populated by `bornsql` through
/// [`Telemetry::record_model_predict`] and friends; queryable as
/// `sys.born_models`.
#[derive(Debug, Default)]
pub struct ModelStats {
    pub deployed: bool,
    pub predict_calls: u64,
    /// Rows returned by predict calls.
    pub rows_returned: u64,
    /// Incremental-learning batches (`fit` counts as one batch too).
    pub fit_batches: u64,
    pub unlearn_calls: u64,
    pub predict_us: Histogram,
}

/// Phase timings of one in-flight statement, captured by the engine entry
/// points. With telemetry disabled the probe never reads the clock, so the
/// disabled configuration pays a single branch per phase.
#[derive(Debug)]
pub struct StatementProbe {
    started: Option<Instant>,
    pub cache_hit: bool,
    pub parse_us: u64,
    pub sema_us: u64,
    pub plan_us: u64,
    pub exec_us: u64,
}

impl StatementProbe {
    pub fn start(enabled: bool) -> StatementProbe {
        StatementProbe {
            started: enabled.then(Instant::now),
            cache_hit: false,
            parse_us: 0,
            sema_us: 0,
            plan_us: 0,
            exec_us: 0,
        }
    }

    pub fn enabled(&self) -> bool {
        self.started.is_some()
    }

    /// Start timing one phase (`None` when telemetry is disabled).
    pub fn phase(&self) -> Option<Instant> {
        self.started.map(|_| Instant::now())
    }

    fn lap(t: Option<Instant>, slot: &mut u64) {
        if let Some(t) = t {
            *slot += t.elapsed().as_micros() as u64;
        }
    }

    pub fn lap_parse(&mut self, t: Option<Instant>) {
        Self::lap(t, &mut self.parse_us);
    }

    pub fn lap_sema(&mut self, t: Option<Instant>) {
        Self::lap(t, &mut self.sema_us);
    }

    pub fn lap_plan(&mut self, t: Option<Instant>) {
        Self::lap(t, &mut self.plan_us);
    }

    pub fn lap_exec(&mut self, t: Option<Instant>) {
        Self::lap(t, &mut self.exec_us);
    }

    /// Microseconds since [`StatementProbe::start`] (0 when disabled).
    pub fn total_us(&self) -> u64 {
        self.started.map_or(0, |t| t.elapsed().as_micros() as u64)
    }
}

/// The engine-wide telemetry registry. One per [`Database`]; shared with the
/// WAL and with `bornsql` models behind `Arc`.
///
/// [`Database`]: crate::Database
pub struct Telemetry {
    enabled: bool,
    slow_threshold_us: u64,
    log_capacity: usize,
    next_statement_id: AtomicU64,

    // -- statement lifecycle ------------------------------------------------
    pub statements: Counter,
    pub statement_errors: Counter,
    pub statement_timeouts: Counter,
    pub rows_returned: Counter,
    pub parse_us: Histogram,
    pub sema_us: Histogram,
    pub plan_us: Histogram,
    pub exec_us: Histogram,
    pub statement_us: Histogram,

    // -- write-ahead log ----------------------------------------------------
    pub wal_appends: Counter,
    pub wal_append_bytes: Counter,
    pub wal_fsyncs: Counter,
    pub wal_fsync_us: Histogram,
    pub wal_checkpoints: Counter,
    pub wal_checkpoint_bytes: Counter,

    // -- vectorized execution -----------------------------------------------
    /// Operators executed on the columnar/vectorized path.
    pub vectorized_ops: Counter,
    /// Mode-capable operators (Scan/Filter/Project/Aggregate) that fell back
    /// to the row-at-a-time path.
    pub row_ops: Counter,

    // -- resource governance -------------------------------------------------
    /// Statements admitted past the concurrency gate (immediately or after
    /// queueing).
    pub admission_admitted: Counter,
    /// Statements that had to wait in the admission queue before running.
    pub admission_queued: Counter,
    /// Statements shed with `Overloaded` (queue full, or deadline expired
    /// while queued).
    pub admission_shed: Counter,
    /// Statements aborted by `ResourceExhausted` (memory budget).
    pub mem_budget_aborts: Counter,
    /// Largest per-statement memory-budget peak observed (bytes).
    pub mem_peak_bytes: Counter,
    /// WAL write attempts retried after a transient storage error.
    pub wal_retries: Counter,

    // -- wait-state rollups ---------------------------------------------------
    // Always-on (telemetry-gated, independent of trace sampling) and only
    // recorded on contended paths, so the uncontended hot path reads no
    // extra clocks. Queryable as `sys.wait_events`.
    /// Time statements spent queued behind the admission gate.
    pub wait_admission_us: Histogram,
    /// Time spent waiting on WAL fsyncs (group-commit leader/follower and
    /// inline non-group fsyncs).
    pub wait_fsync_us: Histogram,
    /// Backoff sleeps between WAL write retries.
    pub wait_wal_retry_us: Histogram,
    /// Coordinator time blocked waiting on the worker pool.
    pub wait_worker_idle_us: Histogram,

    // -- error taxonomy ------------------------------------------------------
    /// Statement failures by error family (see `Telemetry::record_error`).
    pub errors_timeout: Counter,
    pub errors_wal: Counter,
    pub errors_resource: Counter,
    pub errors_overloaded: Counter,
    pub errors_statement: Counter,

    // -- static plan verification --------------------------------------------
    /// Physical plans walked by the post-planning verifier
    /// (`EngineConfig::verify_plans` / `EXPLAIN (VERIFY)`).
    pub verify_plans_checked: Counter,
    /// Invariant violations the verifier reported (each rejected plan counts
    /// every violated check, so one corrupt plan can add several).
    pub verify_violations: Counter,

    /// Ring buffer of the last `log_capacity` statements.
    log: Mutex<std::collections::VecDeque<QueryLogEntry>>,
    /// Ring buffer of kept statement traces (same capacity as the query
    /// log, so a kept trace's query-log row is usually still present).
    traces: Mutex<std::collections::VecDeque<StatementTrace>>,
    /// Per-operator rollups keyed by operator kind (`Scan`, `HashJoin`, …).
    ops: Mutex<BTreeMap<String, OpAgg>>,
    /// Per-model serving metrics keyed by model name.
    models: Mutex<BTreeMap<String, ModelStats>>,
}

impl Telemetry {
    pub fn new(enabled: bool, slow_query_threshold: Duration, log_capacity: usize) -> Telemetry {
        Telemetry {
            enabled,
            slow_threshold_us: slow_query_threshold.as_micros() as u64,
            log_capacity: log_capacity.max(1),
            next_statement_id: AtomicU64::new(1),
            statements: Counter::default(),
            statement_errors: Counter::default(),
            statement_timeouts: Counter::default(),
            rows_returned: Counter::default(),
            parse_us: Histogram::default(),
            sema_us: Histogram::default(),
            plan_us: Histogram::default(),
            exec_us: Histogram::default(),
            statement_us: Histogram::default(),
            wal_appends: Counter::default(),
            wal_append_bytes: Counter::default(),
            wal_fsyncs: Counter::default(),
            wal_fsync_us: Histogram::default(),
            wal_checkpoints: Counter::default(),
            wal_checkpoint_bytes: Counter::default(),
            vectorized_ops: Counter::default(),
            row_ops: Counter::default(),
            admission_admitted: Counter::default(),
            admission_queued: Counter::default(),
            admission_shed: Counter::default(),
            mem_budget_aborts: Counter::default(),
            mem_peak_bytes: Counter::default(),
            wal_retries: Counter::default(),
            wait_admission_us: Histogram::default(),
            wait_fsync_us: Histogram::default(),
            wait_wal_retry_us: Histogram::default(),
            wait_worker_idle_us: Histogram::default(),
            errors_timeout: Counter::default(),
            errors_wal: Counter::default(),
            errors_resource: Counter::default(),
            errors_overloaded: Counter::default(),
            errors_statement: Counter::default(),
            verify_plans_checked: Counter::default(),
            verify_violations: Counter::default(),
            log: Mutex::new(std::collections::VecDeque::new()),
            traces: Mutex::new(std::collections::VecDeque::new()),
            ops: Mutex::new(BTreeMap::new()),
            models: Mutex::new(BTreeMap::new()),
        }
    }

    /// A disabled registry: every recording call is a cheap no-op.
    pub fn disabled() -> Telemetry {
        Telemetry::new(false, Duration::ZERO, 1)
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Zero every counter and histogram and clear the query log and rollups
    /// (model registrations survive, their numbers reset).
    pub fn reset(&self) {
        for c in [
            &self.statements,
            &self.statement_errors,
            &self.statement_timeouts,
            &self.rows_returned,
            &self.wal_appends,
            &self.wal_append_bytes,
            &self.wal_fsyncs,
            &self.wal_checkpoints,
            &self.wal_checkpoint_bytes,
            &self.vectorized_ops,
            &self.row_ops,
            &self.verify_plans_checked,
            &self.verify_violations,
            &self.admission_admitted,
            &self.admission_queued,
            &self.admission_shed,
            &self.mem_budget_aborts,
            &self.mem_peak_bytes,
            &self.wal_retries,
            &self.errors_timeout,
            &self.errors_wal,
            &self.errors_resource,
            &self.errors_overloaded,
            &self.errors_statement,
        ] {
            c.reset();
        }
        for h in [
            &self.parse_us,
            &self.sema_us,
            &self.plan_us,
            &self.exec_us,
            &self.statement_us,
            &self.wal_fsync_us,
            &self.wait_admission_us,
            &self.wait_fsync_us,
            &self.wait_wal_retry_us,
            &self.wait_worker_idle_us,
        ] {
            h.reset();
        }
        self.log.lock().clear();
        self.traces.lock().clear();
        self.ops.lock().clear();
        let mut models = self.models.lock();
        for stats in models.values_mut() {
            let deployed = stats.deployed;
            *stats = ModelStats::default();
            stats.deployed = deployed;
        }
    }

    // ----------------------------------------------------------------------
    // Statement lifecycle
    // ----------------------------------------------------------------------

    /// Record one finished statement: counters, phase histograms, and a
    /// query-log entry. Returns the allocated statement id (so a kept trace
    /// can be stored under the same id); `None` when the registry is
    /// disabled. `waits` backfills the trace-derived wait columns — `None`
    /// when the statement ran untraced.
    #[allow(clippy::too_many_arguments)]
    pub fn record_statement(
        &self,
        probe: &StatementProbe,
        sql: &str,
        status: QueryStatus,
        error: Option<String>,
        rows: u64,
        peak_mem: u64,
        waits: Option<WaitTotals>,
    ) -> Option<u64> {
        if !self.enabled || !probe.enabled() {
            return None;
        }
        self.mem_peak_bytes.set_max(peak_mem);
        let total_us = probe.total_us();
        self.statements.incr();
        match status {
            QueryStatus::Ok => self.rows_returned.add(rows),
            QueryStatus::Error => self.statement_errors.incr(),
            QueryStatus::Timeout => {
                self.statement_errors.incr();
                self.statement_timeouts.incr();
            }
        }
        self.parse_us.record_micros(probe.parse_us);
        self.sema_us.record_micros(probe.sema_us);
        if !probe.cache_hit {
            self.plan_us.record_micros(probe.plan_us);
        }
        self.exec_us.record_micros(probe.exec_us);
        self.statement_us.record_micros(total_us);

        let id = self.next_statement_id.fetch_add(1, Ordering::Relaxed);
        let entry = QueryLogEntry {
            id,
            sql: truncate_sql(sql),
            status,
            error,
            cache_hit: probe.cache_hit,
            slow: self.slow_threshold_us > 0 && total_us >= self.slow_threshold_us,
            parse_us: probe.parse_us,
            sema_us: probe.sema_us,
            plan_us: probe.plan_us,
            exec_us: probe.exec_us,
            total_us,
            rows,
            peak_mem_bytes: peak_mem,
            queue_wait_us: waits.map(|w| w.queue_wait_us),
            fsync_wait_us: waits.map(|w| w.fsync_wait_us),
            retry_count: waits.map(|w| w.retry_count),
        };
        let mut log = self.log.lock();
        if log.len() >= self.log_capacity {
            log.pop_front();
        }
        log.push_back(entry);
        Some(id)
    }

    /// Whether a statement ran longer than `slow_query_threshold` (used by
    /// the trace keep decision; mirrors the query-log `slow` flag).
    pub fn is_slow(&self, total_us: u64) -> bool {
        self.slow_threshold_us > 0 && total_us >= self.slow_threshold_us
    }

    /// Store one kept statement trace in the bounded trace ring.
    pub fn store_trace(&self, trace: StatementTrace) {
        if !self.enabled {
            return;
        }
        let mut traces = self.traces.lock();
        if traces.len() >= self.log_capacity {
            traces.pop_front();
        }
        traces.push_back(trace);
    }

    /// Snapshot of the kept-trace ring, oldest first.
    pub fn traces(&self) -> Vec<StatementTrace> {
        self.traces.lock().iter().cloned().collect()
    }

    /// Bump the per-family error counter for a failed statement. Families
    /// mirror [`EngineError::is_retryable`]: the retryable variants each get
    /// a dedicated counter, everything else lands in `errors.statement`.
    ///
    /// [`EngineError::is_retryable`]: crate::error::EngineError::is_retryable
    pub fn record_error(&self, err: &crate::error::EngineError) {
        use crate::error::EngineError;
        if !self.enabled {
            return;
        }
        match err {
            EngineError::Timeout => self.errors_timeout.incr(),
            EngineError::Wal(_) => self.errors_wal.incr(),
            EngineError::ResourceExhausted { .. } => self.errors_resource.incr(),
            EngineError::Overloaded(_) => self.errors_overloaded.incr(),
            _ => self.errors_statement.incr(),
        }
    }

    /// Snapshot of the query-log ring, oldest first.
    pub fn query_log(&self) -> Vec<QueryLogEntry> {
        self.log.lock().iter().cloned().collect()
    }

    // ----------------------------------------------------------------------
    // Per-operator rollups
    // ----------------------------------------------------------------------

    /// Fold an `EXPLAIN ANALYZE` stats tree into the per-operator rollups,
    /// keyed by operator kind (the label up to its first detail bracket).
    pub fn record_op_stats(&self, stats: &OpStats) {
        if !self.enabled {
            return;
        }
        let mut ops = self.ops.lock();
        fold_op_stats(&mut ops, stats);
    }

    /// Snapshot of the per-operator rollups.
    pub fn op_rollups(&self) -> Vec<(String, OpAgg)> {
        self.ops
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    // ----------------------------------------------------------------------
    // WAL
    // ----------------------------------------------------------------------

    pub fn record_wal_append(&self, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.wal_appends.incr();
        self.wal_append_bytes.add(bytes);
    }

    pub fn record_wal_fsync(&self, took: Duration) {
        if !self.enabled {
            return;
        }
        self.wal_fsyncs.incr();
        self.wal_fsync_us.record(took);
    }

    pub fn record_wal_checkpoint(&self, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.wal_checkpoints.incr();
        self.wal_checkpoint_bytes.add(bytes);
    }

    // ----------------------------------------------------------------------
    // BornSQL model serving metrics
    // ----------------------------------------------------------------------

    /// Ensure a model row exists in `sys.born_models`.
    pub fn register_model(&self, model: &str) {
        if !self.enabled {
            return;
        }
        self.models.lock().entry(model.to_string()).or_default();
    }

    pub fn record_model_predict(&self, model: &str, took: Duration, rows: u64) {
        if !self.enabled {
            return;
        }
        let mut models = self.models.lock();
        let stats = models.entry(model.to_string()).or_default();
        stats.predict_calls += 1;
        stats.rows_returned += rows;
        stats.predict_us.record(took);
    }

    pub fn record_model_fit_batch(&self, model: &str) {
        if !self.enabled {
            return;
        }
        self.models
            .lock()
            .entry(model.to_string())
            .or_default()
            .fit_batches += 1;
    }

    pub fn record_model_unlearn(&self, model: &str) {
        if !self.enabled {
            return;
        }
        self.models
            .lock()
            .entry(model.to_string())
            .or_default()
            .unlearn_calls += 1;
    }

    pub fn set_model_deployed(&self, model: &str, deployed: bool) {
        if !self.enabled {
            return;
        }
        self.models
            .lock()
            .entry(model.to_string())
            .or_default()
            .deployed = deployed;
    }

    /// Run `f` over the per-model stats map (used by `sys.born_models`
    /// materialization).
    pub fn with_models<R>(&self, f: impl FnOnce(&BTreeMap<String, ModelStats>) -> R) -> R {
        f(&self.models.lock())
    }
}

fn truncate_sql(sql: &str) -> String {
    if sql.len() <= MAX_LOGGED_SQL {
        return sql.to_string();
    }
    let mut end = MAX_LOGGED_SQL;
    while !sql.is_char_boundary(end) {
        end -= 1;
    }
    sql[..end].to_string()
}

fn fold_op_stats(ops: &mut BTreeMap<String, OpAgg>, stats: &OpStats) {
    let kind = op_kind(&stats.label);
    let agg = ops.entry(kind.to_string()).or_default();
    agg.calls += 1;
    agg.rows_out += stats.rows_out as u64;
    agg.nanos += stats.elapsed.as_nanos() as u64;
    for child in &stats.children {
        fold_op_stats(ops, child);
    }
}

/// Operator kind of an `EXPLAIN` label: the leading word (`"HashJoin
/// [Inner, 1 keys]"` → `"HashJoin"`).
fn op_kind(label: &str) -> &str {
    label.split([' ', '[']).next().unwrap_or(label)
}

/// The virtual `sys.*` table namespace: names, schemas, and name tests.
/// Schemas are static (only the *rows* are live snapshots), so the semantic
/// analyzer resolves them without touching a registry.
pub mod sys {
    use crate::catalog::{Column, Schema};
    use crate::value::DataType;

    pub const METRICS: &str = "sys.metrics";
    pub const QUERY_LOG: &str = "sys.query_log";
    pub const TABLES: &str = "sys.tables";
    pub const BORN_MODELS: &str = "sys.born_models";
    pub const TRACE_SPANS: &str = "sys.trace_spans";
    pub const WAIT_EVENTS: &str = "sys.wait_events";
    pub const HISTOGRAMS: &str = "sys.histograms";

    /// All virtual table names (lowercase canonical form).
    pub const ALL: [&str; 7] = [
        METRICS,
        QUERY_LOG,
        TABLES,
        BORN_MODELS,
        TRACE_SPANS,
        WAIT_EVENTS,
        HISTOGRAMS,
    ];

    /// Whether `name` lies in the reserved `sys.` namespace (it may still
    /// fail to resolve if it matches no known virtual table).
    pub fn is_sys_name(name: &str) -> bool {
        name.len() > 4 && name.as_bytes()[..4].eq_ignore_ascii_case(b"sys.")
    }

    /// Canonical (lowercase) name if `name` is a known virtual table.
    pub fn canonical(name: &str) -> Option<&'static str> {
        ALL.iter().copied().find(|t| t.eq_ignore_ascii_case(name))
    }

    /// Cheap textual test for `sys.` references, used to keep `sys.*`
    /// statements out of the plan cache (their rows are live snapshots). A
    /// false positive — e.g. the literal `'sys.'` inside a string — only
    /// bypasses the cache, never changes results.
    pub fn mentions_sys(sql: &str) -> bool {
        sql.as_bytes()
            .windows(4)
            .any(|w| w.eq_ignore_ascii_case(b"sys."))
    }

    fn col(name: &str, ty: DataType) -> Column {
        Column {
            name: name.to_string(),
            ty,
        }
    }

    /// Static schema of a virtual table (`None` for unknown names).
    pub fn schema(name: &str) -> Option<Schema> {
        use DataType::{Integer, Real, Text};
        let columns = match canonical(name)? {
            METRICS => vec![col("name", Text), col("kind", Text), col("value", Real)],
            QUERY_LOG => vec![
                col("id", Integer),
                col("sql", Text),
                col("status", Text),
                col("error", Text),
                col("cache_hit", Integer),
                col("slow", Integer),
                col("parse_us", Integer),
                col("sema_us", Integer),
                col("plan_us", Integer),
                col("exec_us", Integer),
                col("duration_ms", Real),
                col("rows", Integer),
                col("peak_mem_bytes", Integer),
                col("queue_wait_us", Integer),
                col("fsync_wait_us", Integer),
                col("retry_count", Integer),
            ],
            TABLES => vec![
                col("name", Text),
                col("rows", Integer),
                col("columns", Integer),
                col("primary_key", Text),
                col("secondary_indexes", Integer),
                col("chunk_count", Integer),
                col("dict_columns", Integer),
            ],
            BORN_MODELS => vec![
                col("model", Text),
                col("deployed", Integer),
                col("predict_calls", Integer),
                col("predict_mean_us", Real),
                col("predict_p50_us", Real),
                col("predict_p99_us", Real),
                col("rows_returned", Integer),
                col("fit_batches", Integer),
                col("unlearn_calls", Integer),
            ],
            TRACE_SPANS => vec![
                col("statement_id", Integer),
                col("span_id", Integer),
                col("parent_id", Integer),
                col("name", Text),
                col("start_us", Integer),
                col("duration_us", Integer),
                col("wait_class", Text),
                col("rows", Integer),
                col("attrs", Text),
            ],
            WAIT_EVENTS => vec![
                col("wait_class", Text),
                col("count", Integer),
                col("total_us", Integer),
                col("mean_us", Real),
                col("max_us", Integer),
            ],
            HISTOGRAMS => vec![
                col("metric", Text),
                col("bucket_lo_us", Integer),
                col("bucket_hi_us", Integer),
                col("count", Integer),
            ],
            _ => unreachable!("canonical returns only known names"),
        };
        Some(Schema::new(columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::default();
        assert_eq!(h.percentile_micros(0.5), 0.0);
        for us in [1u64, 2, 3, 100, 1000, 1000, 1000, 8000] {
            h.record_micros(us);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max_micros(), 8000);
        let p50 = h.percentile_micros(0.5);
        // The 4th sample of 8 lands in the 100µs region: upper bound 128.
        assert!((64.0..=256.0).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile_micros(0.99);
        assert!(p99 >= 1000.0, "p99 = {p99}");
        // Zero-duration samples land in the first bucket, not a panic.
        h.record_micros(0);
        assert_eq!(h.count(), 9);
    }

    #[test]
    fn sys_names() {
        assert!(sys::is_sys_name("sys.metrics"));
        assert!(sys::is_sys_name("SYS.QUERY_LOG"));
        assert!(!sys::is_sys_name("system"));
        assert!(!sys::is_sys_name("mytable"));
        assert_eq!(sys::canonical("SYS.Tables"), Some(sys::TABLES));
        assert_eq!(sys::canonical("sys.nope"), None);
        assert!(sys::mentions_sys("SELECT * FROM Sys.Metrics"));
        assert!(!sys::mentions_sys("SELECT * FROM weights"));
        for name in sys::ALL {
            assert!(sys::schema(name).is_some());
        }
    }

    #[test]
    fn query_log_ring_evicts_oldest() {
        let t = Telemetry::new(true, Duration::from_millis(100), 2);
        for i in 0..3 {
            let probe = StatementProbe::start(true);
            let id = t.record_statement(
                &probe,
                &format!("SELECT {i}"),
                QueryStatus::Ok,
                None,
                1,
                0,
                None,
            );
            assert_eq!(id, Some(i + 1));
        }
        let log = t.query_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].sql, "SELECT 1");
        assert_eq!(log[1].sql, "SELECT 2");
        assert_eq!(log[1].id, 3);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let t = Telemetry::disabled();
        let probe = StatementProbe::start(t.enabled());
        assert!(!probe.enabled());
        let id = t.record_statement(&probe, "SELECT 1", QueryStatus::Ok, None, 1, 0, None);
        assert_eq!(id, None);
        t.record_wal_append(10);
        t.record_model_predict("m", Duration::from_micros(5), 1);
        t.store_trace(crate::trace::StatementTrace {
            statement_id: 1,
            spans: Vec::new(),
        });
        assert_eq!(t.statements.get(), 0);
        assert_eq!(t.wal_appends.get(), 0);
        assert!(t.query_log().is_empty());
        assert!(t.traces().is_empty());
        assert!(t.with_models(|m| m.is_empty()));
    }

    #[test]
    fn percentile_is_clamped_to_max_and_interpolated() {
        // Every sample equals 65µs: the old estimator attributed the p99
        // sample to its bucket's upper bound (128µs, a ~2× overshoot); the
        // clamp pins the estimate to the recorded max exactly.
        let h = Histogram::default();
        for _ in 0..1000 {
            h.record_micros(65);
        }
        assert_eq!(h.percentile_micros(0.99), 65.0);
        assert_eq!(h.percentile_micros(0.5), 65.0);

        // Uniform 1..=1000µs: interpolation keeps mid-range percentiles
        // near their true values instead of the bucket upper bound.
        let u = Histogram::default();
        for us in 1..=1000u64 {
            u.record_micros(us);
        }
        let p50 = u.percentile_micros(0.5);
        assert!((450.0..=512.0).contains(&p50), "p50 = {p50}");
        let p99 = u.percentile_micros(0.99);
        assert!(p99 <= 1000.0, "p99 = {p99} exceeds the recorded max");
        assert!(p99 >= 900.0, "p99 = {p99}");
    }

    #[test]
    fn trace_ring_is_bounded() {
        let t = Telemetry::new(true, Duration::from_millis(100), 2);
        for id in 1..=3u64 {
            t.store_trace(crate::trace::StatementTrace {
                statement_id: id,
                spans: Vec::new(),
            });
        }
        let traces = t.traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].statement_id, 2);
        assert_eq!(traces[1].statement_id, 3);
    }

    #[test]
    fn op_kind_strips_details() {
        assert_eq!(op_kind("Scan [10 rows × 2 cols]"), "Scan");
        assert_eq!(op_kind("HashJoin [Inner, 1 keys]"), "HashJoin");
        assert_eq!(
            op_kind("IndexScan weights_j (probed) [of 6000 rows]"),
            "IndexScan"
        );
        assert_eq!(op_kind("Distinct"), "Distinct");
    }
}
