//! Minimal CSV import / export (a `COPY`-style facility).
//!
//! Supports RFC-4180-style quoting (`"` with `""` escapes), headers, and
//! type coercion against the target table's declared schema. Used by the
//! examples to move data in and out without a driver dependency.

use crate::engine::Database;
use crate::error::{EngineError, Result};
use crate::value::{Row, Value};

/// Parse one CSV line into fields (handles quoted fields with embedded
/// commas, quotes, but not embedded newlines — records are line-based).
fn parse_line(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    loop {
        match chars.next() {
            None => {
                if in_quotes {
                    return Err(EngineError::exec("unterminated quoted CSV field"));
                }
                fields.push(std::mem::take(&mut field));
                break;
            }
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if field.is_empty() && !in_quotes => in_quotes = true,
            Some(',') if !in_quotes => fields.push(std::mem::take(&mut field)),
            Some(c) => field.push(c),
        }
    }
    Ok(fields)
}

/// Render one field with quoting when needed.
fn render_field(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        other => {
            let s = other.to_string();
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s
            }
        }
    }
}

impl Database {
    /// Import CSV text into an existing table. With `has_header` the first
    /// line is used to map columns by name (missing columns become NULL);
    /// otherwise fields map positionally. Empty fields import as NULL.
    /// Returns the number of rows inserted.
    pub fn import_csv(&self, table: &str, csv: &str, has_header: bool) -> Result<usize> {
        let (schema, _, _) = self.dump_table(table)?;
        let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
        let positions: Vec<Option<usize>> = if has_header {
            let header = lines
                .next()
                .ok_or_else(|| EngineError::exec("CSV is empty"))?;
            parse_line(header)?
                .iter()
                .map(|name| schema.position(name))
                .collect()
        } else {
            (0..schema.len()).map(Some).collect()
        };

        let mut rows: Vec<Row> = Vec::new();
        for line in lines {
            let fields = parse_line(line)?;
            let mut row: Row = vec![Value::Null; schema.len()];
            for (i, field) in fields.iter().enumerate() {
                let Some(Some(pos)) = positions.get(i) else {
                    continue; // unmapped CSV column
                };
                if field.is_empty() {
                    continue; // NULL
                }
                // Coerce via the declared type (falls back to TEXT).
                row[*pos] = Value::text(field).cast_to(schema.columns[*pos].ty)?;
            }
            rows.push(row);
        }
        self.insert_rows(table, rows)
    }

    /// Export a query result as CSV text with a header row.
    pub fn export_csv(&self, sql: &str) -> Result<String> {
        let result = self.query(sql)?;
        let mut out = String::new();
        out.push_str(&result.columns.join(","));
        out.push('\n');
        for row in &result.rows {
            let fields: Vec<String> = row.iter().map(render_field).collect();
            out.push_str(&fields.join(","));
            out.push('\n');
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_header() {
        let db = Database::new();
        db.execute("CREATE TABLE t (id INTEGER, name TEXT, w REAL)")
            .unwrap();
        let n = db
            .import_csv(
                "t",
                "id,name,w\n1,alice,0.5\n2,\"bob, the second\",1.5\n3,,\n",
                true,
            )
            .unwrap();
        assert_eq!(n, 3);
        let r = db.query("SELECT name FROM t WHERE id = 2").unwrap();
        assert_eq!(r.rows[0][0], Value::text("bob, the second"));
        let r2 = db.query("SELECT name FROM t WHERE id = 3").unwrap();
        assert!(r2.rows[0][0].is_null());

        let csv = db
            .export_csv("SELECT id, name, w FROM t ORDER BY id")
            .unwrap();
        assert!(csv.starts_with("id,name,w\n1,alice,0.5\n"));
        assert!(csv.contains("\"bob, the second\""));

        // Re-import the export into a fresh table.
        let db2 = Database::new();
        db2.execute("CREATE TABLE t (id INTEGER, name TEXT, w REAL)")
            .unwrap();
        assert_eq!(db2.import_csv("t", &csv, true).unwrap(), 3);
    }

    #[test]
    fn positional_import_and_reordered_header() {
        let db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        db.import_csv("t", "5,five\n6,six\n", false).unwrap();
        assert_eq!(db.table_rows("t").unwrap(), 2);
        // Header in a different order maps by name.
        db.import_csv("t", "b,a\nseven,7\n", true).unwrap();
        let r = db.query("SELECT b FROM t WHERE a = 7").unwrap();
        assert_eq!(r.rows[0][0], Value::text("seven"));
    }

    #[test]
    fn quotes_and_escapes() {
        assert_eq!(
            parse_line("a,\"b\"\"c\",d").unwrap(),
            vec!["a", "b\"c", "d"]
        );
        assert_eq!(parse_line("").unwrap(), vec![""]);
        assert!(parse_line("\"open").is_err());
    }

    #[test]
    fn type_coercion_errors_are_reported() {
        let db = Database::new();
        db.execute("CREATE TABLE t (n INTEGER)").unwrap();
        assert!(db.import_csv("t", "n\nnot_a_number\n", true).is_err());
    }
}
