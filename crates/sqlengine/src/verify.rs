//! Post-planning static plan verification.
//!
//! After PRs 2–7 the engine carries three layers of cross-layer invariants
//! that nothing checked mechanically: sema-inferred output schemas vs.
//! physical plan shapes, index-scan keys vs. live catalog index definitions,
//! and vectorized-mode labels vs. the kernel eligibility grammar. This
//! module walks a [`PhysPlan`] bottom-up and checks five invariant classes:
//!
//! 1. **schema** — every node's output arity is internally consistent
//!    (join/aggregate/project widths add up, expression column references
//!    stay in bounds) and the root's arity and value types match the
//!    sema-typed output [`Scope`].
//! 2. **index-keys** — `IndexScan` / index-nested-loop nodes name a real
//!    catalog index, key tuple arity matches the index's key columns, key
//!    literal types match the indexed columns' declared types, and (when the
//!    caller holds the catalog-version guarantee) the plan's index and row
//!    snapshots are pointer-identical to the live catalog — i.e. the cached
//!    plan's catalog version is current.
//! 3. **vectorized-mode** — every operator labeled `mode=vectorized`
//!    satisfies the kernel eligibility grammar. The grammar is *re-derived
//!    independently here* (not imported from `exec::vector`), so drift
//!    between the planner/executor's notion of eligibility and the
//!    documented grammar is caught, and a scan's columnar chunk image must
//!    describe exactly the row snapshot it travels with.
//! 4. **param-slots** — in a cached plan template every `?` slot from 1 to
//!    the maximum is reachable from the bind map (a gap means a bound value
//!    is silently dropped); in an executable plan no unbound
//!    [`PhysExpr::Param`] survives.
//! 5. **merge-determinism** — operators whose parallel implementations merge
//!    worker streams deterministically (`UNION ALL`, and the sorted-run
//!    merges under `Sort`/`DISTINCT`) only merge streams that agree on row
//!    arity; a ragged `UnionAll` would make the submission-order merge
//!    ill-defined.
//!
//! The verifier runs on every freshly planned query and on every plan
//! served from the cache when [`crate::EngineConfig::verify_plans`] is on
//! (the default in debug builds, off in release), and is surfaced as
//! `EXPLAIN (VERIFY)` plus the `verify.plans_checked` /
//! `verify.violations` counters in `sys.metrics`. Violations convert into
//! spanned [`EngineError::Verify`] diagnostics pointing at the statement.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::ast::{AggregateFunc, BinaryOp, JoinKind};
use crate::catalog::Catalog;
use crate::error::{EngineError, Span};
use crate::expr::{PhysExpr, Scope};
use crate::plan::{AggSpec, IndexRef, PhysPlan, PlannedQuery};
use crate::value::{DataType, Row, Value};

/// The five invariant classes the verifier checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VerifyRule {
    /// Per-node output arity and root schema/type agreement with sema.
    Schema,
    /// Index references resolve against the live catalog with matching key
    /// arity, column types, and snapshot identity.
    IndexKeys,
    /// `mode=vectorized` labels satisfy the independently re-derived kernel
    /// eligibility grammar; chunk images match their row snapshots.
    VectorizedMode,
    /// Parameter slots are gap-free in templates and fully bound in
    /// executable plans.
    ParamSlots,
    /// Deterministically merged streams agree on row arity.
    MergeDeterminism,
}

impl VerifyRule {
    /// All classes, in reporting order.
    pub const ALL: [VerifyRule; 5] = [
        VerifyRule::Schema,
        VerifyRule::IndexKeys,
        VerifyRule::VectorizedMode,
        VerifyRule::ParamSlots,
        VerifyRule::MergeDeterminism,
    ];

    /// Stable kebab-case name used in diagnostics, `EXPLAIN (VERIFY)`
    /// output, and tests.
    pub fn name(self) -> &'static str {
        match self {
            VerifyRule::Schema => "schema",
            VerifyRule::IndexKeys => "index-keys",
            VerifyRule::VectorizedMode => "vectorized-mode",
            VerifyRule::ParamSlots => "param-slots",
            VerifyRule::MergeDeterminism => "merge-determinism",
        }
    }
}

impl fmt::Display for VerifyRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One invariant violation found in a plan.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: VerifyRule,
    /// The operator the violation was found at (its `EXPLAIN` label).
    pub node: String,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.rule, self.node, self.message)
    }
}

/// How `?` parameter slots must appear in the plan under verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamDiscipline {
    /// A cached plan template: `Param` nodes are expected, but the used
    /// slot set must be gap-free from 1 to the maximum.
    Template,
    /// An executable plan: every parameter must already be bound, so no
    /// `Param` node may remain anywhere in the tree.
    Bound,
}

/// What the verifier may assume about the catalog it was handed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotGuarantee {
    /// The caller holds the catalog read lock the plan was built (or
    /// version-validated) under: plan snapshots must be pointer-identical
    /// to the live catalog's.
    Current,
    /// The catalog may have advanced past the plan's version (e.g. a cache
    /// hit that raced a writer): structural index checks still run, but
    /// snapshot-identity mismatches are not violations.
    MayLag,
}

/// The outcome of verifying one plan.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Operator nodes walked.
    pub nodes: usize,
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// First violation of a given class, if any.
    pub fn first_of(&self, rule: VerifyRule) -> Option<&Violation> {
        self.violations.iter().find(|v| v.rule == rule)
    }

    /// Collapse the report into a spanned [`EngineError::Verify`] carrying
    /// every violation (one per line), or `Ok` when the plan is clean.
    pub fn into_result(self, span: Span) -> crate::error::Result<()> {
        if self.violations.is_empty() {
            return Ok(());
        }
        let mut message = format!(
            "{} invariant violation(s) in physical plan:",
            self.violations.len()
        );
        for v in &self.violations {
            message.push_str("\n  ");
            message.push_str(&v.to_string());
        }
        Err(EngineError::verify(message, span))
    }
}

/// Verify a planned query against its sema-typed output scope.
pub fn verify_planned(
    planned: &PlannedQuery,
    catalog: Option<&Catalog>,
    guarantee: SnapshotGuarantee,
    discipline: ParamDiscipline,
) -> VerifyReport {
    verify_plan(
        &planned.plan,
        Some(&planned.scope),
        catalog,
        guarantee,
        discipline,
    )
}

/// Verify a bare plan. `expected` is the sema-typed output scope when the
/// caller has one; without it the root schema check is skipped and only the
/// internal consistency checks run.
pub fn verify_plan(
    plan: &PhysPlan,
    expected: Option<&Scope>,
    catalog: Option<&Catalog>,
    guarantee: SnapshotGuarantee,
    discipline: ParamDiscipline,
) -> VerifyReport {
    let mut checker = Checker {
        catalog,
        guarantee,
        violations: Vec::new(),
        nodes: 0,
        slots: BTreeSet::new(),
        discipline,
    };
    let (width, types) = checker.node(plan);
    check_mode_labels(plan, &mut checker.violations);
    if let Some(scope) = expected {
        if width != scope.len() {
            checker.violate(
                VerifyRule::Schema,
                plan,
                format!(
                    "root produces {width} column(s) but the analyzed schema has {}",
                    scope.len()
                ),
            );
        } else {
            for (i, label) in scope.labels.iter().enumerate() {
                if !compatible(types[i], label.ty) {
                    checker.violate(
                        VerifyRule::Schema,
                        plan,
                        format!(
                            "output column {} ('{}') carries {} values but sema inferred {}",
                            i + 1,
                            label.name,
                            types[i],
                            label.ty
                        ),
                    );
                }
            }
        }
    }
    // Template plans must use a gap-free slot range: a hole means one bound
    // value can never reach any plan node ("orphan slot").
    if discipline == ParamDiscipline::Template {
        if let Some(&max) = checker.slots.iter().next_back() {
            for slot in 1..=max {
                if !checker.slots.contains(&slot) {
                    checker.violations.push(Violation {
                        rule: VerifyRule::ParamSlots,
                        node: "plan".to_string(),
                        message: format!(
                            "parameter slot ?{slot} is unreachable from the bind map \
                             (slots used: {:?}, max {max})",
                            checker.slots
                        ),
                    });
                }
            }
        }
    }
    VerifyReport {
        nodes: checker.nodes,
        violations: checker.violations,
    }
}

/// Whether an observed value type is acceptable where sema inferred `want`.
/// `Any` on either side is a wildcard, and the two numeric types are
/// mutually acceptable (the engine's dynamic typing stores `INTEGER` values
/// in `REAL` columns and vice versa); only a Text/numeric clash — the shape
/// a swapped-schema corruption produces — is a violation.
fn compatible(got: DataType, want: DataType) -> bool {
    match (got, want) {
        (DataType::Any, _) | (_, DataType::Any) => true,
        (DataType::Text, DataType::Text) => true,
        (DataType::Text, _) | (_, DataType::Text) => false,
        _ => true,
    }
}

/// Value types of the first row, `Any`-padded to `width` (`NULL` and
/// missing rows observe as `Any`).
fn row_types(rows: &[Row], width: usize) -> Vec<DataType> {
    let mut types = vec![DataType::Any; width];
    if let Some(row) = rows.first() {
        for (i, v) in row.iter().take(width).enumerate() {
            types[i] = v.data_type();
        }
    }
    types
}

struct Checker<'a> {
    catalog: Option<&'a Catalog>,
    guarantee: SnapshotGuarantee,
    violations: Vec<Violation>,
    nodes: usize,
    /// Every `?` slot index referenced anywhere in the plan.
    slots: BTreeSet<usize>,
    discipline: ParamDiscipline,
}

impl Checker<'_> {
    fn violate(&mut self, rule: VerifyRule, node: &PhysPlan, message: String) {
        self.violations.push(Violation {
            rule,
            node: crate::explain::op_label(node),
            message,
        });
    }

    /// Walk one node, returning its output `(arity, column value types)`.
    fn node(&mut self, plan: &PhysPlan) -> (usize, Vec<DataType>) {
        self.nodes += 1;
        match plan {
            PhysPlan::Scan {
                rows,
                width,
                chunks,
            } => {
                self.check_row_arity(plan, rows, *width);
                if let Some(slot) = chunks {
                    self.check_chunks(plan, slot, rows, *width);
                }
                (*width, row_types(rows, *width))
            }
            PhysPlan::VirtualScan { rows, width, .. } => {
                self.check_row_arity(plan, rows, *width);
                (*width, row_types(rows, *width))
            }
            PhysPlan::IndexScan {
                rows,
                width,
                index_name,
                index,
                keys,
            } => {
                self.check_row_arity(plan, rows, *width);
                self.check_index(plan, index_name, index, keys.as_deref(), rows);
                if let Some(keys) = keys {
                    for tuple in keys {
                        for e in tuple {
                            // Key expressions are row-independent: no column
                            // reference is legal (input width 0).
                            self.expr(plan, e, 0);
                        }
                    }
                }
                (*width, row_types(rows, *width))
            }
            PhysPlan::OneRow => (0, Vec::new()),
            PhysPlan::Filter { input, predicate } => {
                let (width, types) = self.node(input);
                self.expr(plan, predicate, width);
                (width, types)
            }
            PhysPlan::Project { input, exprs } => {
                let (width, types) = self.node(input);
                let out = exprs
                    .iter()
                    .map(|e| {
                        self.expr(plan, e, width);
                        expr_type(e, &types)
                    })
                    .collect();
                (exprs.len(), out)
            }
            PhysPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                kind: _,
                right_width,
                residual,
                algo: _,
            } => {
                let (lw, mut types) = self.node(left);
                let (rw, rtypes) = self.node(right);
                if *right_width != rw {
                    self.violate(
                        VerifyRule::Schema,
                        plan,
                        format!("declared right_width {right_width} but right child produces {rw}"),
                    );
                }
                if left_keys.len() != right_keys.len() {
                    self.violate(
                        VerifyRule::Schema,
                        plan,
                        format!(
                            "{} left key(s) vs {} right key(s)",
                            left_keys.len(),
                            right_keys.len()
                        ),
                    );
                }
                for k in left_keys {
                    self.expr(plan, k, lw);
                }
                for k in right_keys {
                    self.expr(plan, k, rw);
                }
                types.extend(rtypes);
                if let Some(r) = residual {
                    self.expr(plan, r, lw + rw);
                }
                (lw + rw, types)
            }
            PhysPlan::NestedLoopJoin {
                left,
                right,
                kind: _,
                right_width,
                predicate,
            } => {
                let (lw, mut types) = self.node(left);
                let (rw, rtypes) = self.node(right);
                if *right_width != rw {
                    self.violate(
                        VerifyRule::Schema,
                        plan,
                        format!("declared right_width {right_width} but right child produces {rw}"),
                    );
                }
                types.extend(rtypes);
                if let Some(p) = predicate {
                    self.expr(plan, p, lw + rw);
                }
                (lw + rw, types)
            }
            PhysPlan::IndexJoin {
                probe,
                probe_keys,
                inner,
                inner_is_left,
                kind,
                inner_width,
                residual,
            } => {
                let (pw, ptypes) = self.node(probe);
                let (iw, itypes) = self.node(inner);
                if *inner_width != iw {
                    self.violate(
                        VerifyRule::Schema,
                        plan,
                        format!("declared inner_width {inner_width} but inner child produces {iw}"),
                    );
                }
                match inner.as_ref() {
                    PhysPlan::IndexScan {
                        keys: None,
                        index,
                        index_name,
                        ..
                    } => {
                        // Probe-key arity must match the index key arity.
                        // The plan-side index snapshot exposes it through
                        // any stored key tuple; the catalog side is checked
                        // in `check_index`.
                        if let Some(arity) = index_key_arity(index) {
                            if probe_keys.len() != arity {
                                self.violate(
                                    VerifyRule::IndexKeys,
                                    plan,
                                    format!(
                                        "{} probe key(s) against index '{index_name}' \
                                         whose keys have {arity} column(s)",
                                        probe_keys.len()
                                    ),
                                );
                            }
                        }
                    }
                    other => self.violate(
                        VerifyRule::IndexKeys,
                        plan,
                        format!(
                            "inner side must be a probed IndexScan (keys: None), found {}",
                            crate::explain::op_label(other)
                        ),
                    ),
                }
                if *kind == JoinKind::Left && *inner_is_left {
                    self.violate(
                        VerifyRule::Schema,
                        plan,
                        "LEFT index join requires the probe side on the left \
                         (inner_is_left must be false)"
                            .to_string(),
                    );
                }
                for k in probe_keys {
                    self.expr(plan, k, pw);
                }
                let types: Vec<DataType> = if *inner_is_left {
                    itypes.into_iter().chain(ptypes).collect()
                } else {
                    ptypes.into_iter().chain(itypes).collect()
                };
                if let Some(r) = residual {
                    self.expr(plan, r, pw + iw);
                }
                (pw + iw, types)
            }
            PhysPlan::Aggregate { input, keys, aggs } => {
                let (width, types) = self.node(input);
                let mut out = Vec::with_capacity(keys.len() + aggs.len());
                for k in keys {
                    self.expr(plan, k, width);
                    out.push(expr_type(k, &types));
                }
                for a in aggs {
                    if let Some(arg) = &a.arg {
                        self.expr(plan, arg, width);
                    }
                    out.push(agg_type(a, &types));
                }
                (keys.len() + aggs.len(), out)
            }
            PhysPlan::Window {
                input,
                func: _,
                partition,
                order,
            } => {
                let (width, mut types) = self.node(input);
                for p in partition {
                    self.expr(plan, p, width);
                }
                for (e, _) in order {
                    self.expr(plan, e, width);
                }
                types.push(DataType::Integer);
                (width + 1, types)
            }
            PhysPlan::Sort { input, keys } => {
                let (width, types) = self.node(input);
                for (e, _) in keys {
                    self.expr(plan, e, width);
                }
                (width, types)
            }
            PhysPlan::Limit { input, .. } | PhysPlan::Distinct { input } => self.node(input),
            PhysPlan::UnionAll { inputs } => {
                if inputs.is_empty() {
                    self.violate(
                        VerifyRule::MergeDeterminism,
                        plan,
                        "UnionAll with no inputs has no defined output arity".to_string(),
                    );
                    return (0, Vec::new());
                }
                let (width, types) = self.node(&inputs[0]);
                for (i, branch) in inputs.iter().enumerate().skip(1) {
                    let (w, _) = self.node(branch);
                    if w != width {
                        self.violate(
                            VerifyRule::MergeDeterminism,
                            plan,
                            format!(
                                "merged stream {} produces {w} column(s) but stream 1 \
                                 produces {width}; the deterministic submission-order \
                                 merge requires arity agreement",
                                i + 1
                            ),
                        );
                    }
                }
                (width, types)
            }
        }
    }

    /// Rows must match the declared arity (checked against the first row;
    /// storage guarantees non-raggedness within a snapshot).
    fn check_row_arity(&mut self, plan: &PhysPlan, rows: &[Row], width: usize) {
        if let Some(first) = rows.first() {
            if first.len() != width {
                self.violate(
                    VerifyRule::Schema,
                    plan,
                    format!(
                        "declared width {width} but stored rows have {} column(s)",
                        first.len()
                    ),
                );
            }
        }
    }

    /// A scan labeled `mode=vectorized` (it carries a chunk slot) must
    /// travel with a columnar image of exactly its row snapshot.
    fn check_chunks(
        &mut self,
        plan: &PhysPlan,
        slot: &crate::column::ChunkSlot,
        rows: &Arc<Vec<Row>>,
        width: usize,
    ) {
        let Some(built) = slot.peek() else {
            return; // lazily unbuilt: nothing to compare yet
        };
        if built.row_count() != rows.len() {
            self.violate(
                VerifyRule::VectorizedMode,
                plan,
                format!(
                    "chunk image holds {} row(s) but the scan snapshot has {}; \
                     the columnar image must describe the same snapshot",
                    built.row_count(),
                    rows.len()
                ),
            );
        }
        if let Some(chunk) = built.chunks().first() {
            if chunk.width() != width {
                self.violate(
                    VerifyRule::VectorizedMode,
                    plan,
                    format!(
                        "chunk image is {} column(s) wide but the scan declares {width}",
                        chunk.width()
                    ),
                );
            }
        }
    }

    /// Resolve an index by name against the live catalog and check key
    /// arity, key literal types, and snapshot identity.
    fn check_index(
        &mut self,
        plan: &PhysPlan,
        index_name: &str,
        index: &IndexRef,
        keys: Option<&[Vec<PhysExpr>]>,
        rows: &Arc<Vec<Row>>,
    ) {
        let Some(catalog) = self.catalog else {
            return;
        };
        let Some(resolved) = resolve_index(catalog, index_name) else {
            self.violate(
                VerifyRule::IndexKeys,
                plan,
                format!("no index named '{index_name}' exists in the catalog"),
            );
            return;
        };
        if let Some(keys) = keys {
            for tuple in keys {
                if tuple.len() != resolved.key_columns.len() {
                    self.violate(
                        VerifyRule::IndexKeys,
                        plan,
                        format!(
                            "key tuple has {} column(s) but index '{index_name}' \
                             is over {} column(s)",
                            tuple.len(),
                            resolved.key_columns.len()
                        ),
                    );
                    continue;
                }
                for (e, &col) in tuple.iter().zip(&resolved.key_columns) {
                    let want = resolved.column_types[col];
                    let got = literal_type(e);
                    if !compatible(got, want) {
                        self.violate(
                            VerifyRule::IndexKeys,
                            plan,
                            format!(
                                "key for indexed column '{}' is {got} but the column \
                                 is declared {want}",
                                resolved.column_names[col]
                            ),
                        );
                    }
                }
            }
        }
        if self.guarantee == SnapshotGuarantee::Current {
            let map_current = match (index, &resolved.unique_map, &resolved.multi_map) {
                (IndexRef::Unique(m), Some(live), _) => Arc::ptr_eq(m, live),
                (IndexRef::Multi(m), _, Some(live)) => Arc::ptr_eq(m, live),
                _ => false,
            };
            if !map_current {
                self.violate(
                    VerifyRule::IndexKeys,
                    plan,
                    format!(
                        "index snapshot for '{index_name}' does not match the live \
                         catalog: the plan's catalog version is stale"
                    ),
                );
            }
            if !Arc::ptr_eq(rows, &resolved.rows) {
                self.violate(
                    VerifyRule::IndexKeys,
                    plan,
                    format!(
                        "row snapshot for '{index_name}' does not match the live \
                         catalog: the plan's catalog version is stale"
                    ),
                );
            }
        }
    }

    /// Walk one expression: column references must stay inside the input
    /// arity, and parameter slots are collected (or rejected, when the plan
    /// claims to be fully bound).
    fn expr(&mut self, node: &PhysPlan, e: &PhysExpr, width: usize) {
        match e {
            PhysExpr::Column(i) => {
                if *i >= width {
                    self.violate(
                        VerifyRule::Schema,
                        node,
                        format!("column reference #{i} out of range (input arity {width})"),
                    );
                }
            }
            PhysExpr::Param(slot) => {
                self.slots.insert(*slot);
                if self.discipline == ParamDiscipline::Bound {
                    self.violate(
                        VerifyRule::ParamSlots,
                        node,
                        format!("unbound parameter slot ?{slot} in an executable plan"),
                    );
                }
            }
            PhysExpr::Literal(_) => {}
            PhysExpr::Unary { expr, .. }
            | PhysExpr::IsNull { expr, .. }
            | PhysExpr::Cast { expr, .. } => self.expr(node, expr, width),
            PhysExpr::Binary { left, right, .. } => {
                self.expr(node, left, width);
                self.expr(node, right, width);
            }
            PhysExpr::InList { expr, list, .. } => {
                self.expr(node, expr, width);
                for i in list {
                    self.expr(node, i, width);
                }
            }
            PhysExpr::Between {
                expr, low, high, ..
            } => {
                self.expr(node, expr, width);
                self.expr(node, low, width);
                self.expr(node, high, width);
            }
            PhysExpr::Like { expr, pattern, .. } => {
                self.expr(node, expr, width);
                self.expr(node, pattern, width);
            }
            PhysExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    self.expr(node, o, width);
                }
                for (w, t) in branches {
                    self.expr(node, w, width);
                    self.expr(node, t, width);
                }
                if let Some(el) = else_expr {
                    self.expr(node, el, width);
                }
            }
            PhysExpr::Function { args, .. } => {
                for a in args {
                    self.expr(node, a, width);
                }
            }
        }
    }
}

/// A catalog index resolved by name, flattened for checking.
struct ResolvedIndex {
    key_columns: Vec<usize>,
    column_types: Vec<DataType>,
    column_names: Vec<String>,
    rows: Arc<Vec<Row>>,
    unique_map: Option<Arc<std::collections::HashMap<Vec<Value>, usize>>>,
    multi_map: Option<Arc<std::collections::HashMap<Vec<Value>, Vec<usize>>>>,
}

/// Find the index `name` refers to. Primary keys are named `<table>.pk` by
/// the planner; secondary indexes use their `CREATE INDEX` name.
fn resolve_index(catalog: &Catalog, name: &str) -> Option<ResolvedIndex> {
    for tname in catalog.table_names() {
        let Ok(t) = catalog.get(&tname) else {
            continue;
        };
        let column_types: Vec<DataType> = t.schema.columns.iter().map(|c| c.ty).collect();
        let column_names: Vec<String> = t.schema.columns.iter().map(|c| c.name.clone()).collect();
        if let Some(p) = &t.primary {
            if name.eq_ignore_ascii_case(&format!("{}.pk", t.name)) {
                return Some(ResolvedIndex {
                    key_columns: p.key_columns.clone(),
                    column_types,
                    column_names,
                    rows: Arc::clone(&t.rows),
                    unique_map: Some(Arc::clone(&p.map)),
                    multi_map: None,
                });
            }
        }
        for s in &t.secondary {
            if s.name.eq_ignore_ascii_case(name) {
                return Some(ResolvedIndex {
                    key_columns: s.key_columns.clone(),
                    column_types,
                    column_names,
                    rows: Arc::clone(&t.rows),
                    unique_map: None,
                    multi_map: Some(Arc::clone(&s.map)),
                });
            }
        }
    }
    None
}

/// Key arity of an index snapshot, observable from any stored key tuple
/// (`None` for an empty index).
fn index_key_arity(index: &IndexRef) -> Option<usize> {
    match index {
        IndexRef::Unique(m) => m.keys().next().map(Vec::len),
        IndexRef::Multi(m) => m.keys().next().map(Vec::len),
    }
}

/// Static type of a row-independent key expression (`Any` when it depends
/// on parameters or anything non-literal).
fn literal_type(e: &PhysExpr) -> DataType {
    match e {
        PhysExpr::Literal(v) => v.data_type(),
        PhysExpr::Cast { ty, .. } => *ty,
        _ => DataType::Any,
    }
}

/// Bottom-up value-type inference over a bound expression, given the input
/// column types. Deliberately conservative: anything uncertain is `Any`.
fn expr_type(e: &PhysExpr, input: &[DataType]) -> DataType {
    match e {
        PhysExpr::Literal(v) => v.data_type(),
        PhysExpr::Column(i) => input.get(*i).copied().unwrap_or(DataType::Any),
        PhysExpr::Cast { ty, .. } => *ty,
        PhysExpr::Binary { left, op, right } => match op {
            BinaryOp::Concat => DataType::Text,
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq
            | BinaryOp::And
            | BinaryOp::Or => DataType::Integer,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Mod => {
                match (expr_type(left, input), expr_type(right, input)) {
                    (DataType::Integer, DataType::Integer) => DataType::Integer,
                    (DataType::Real, DataType::Real)
                    | (DataType::Integer, DataType::Real)
                    | (DataType::Real, DataType::Integer) => DataType::Real,
                    _ => DataType::Any,
                }
            }
            BinaryOp::Div => match (expr_type(left, input), expr_type(right, input)) {
                (DataType::Integer, DataType::Integer) => DataType::Integer,
                (DataType::Real, _) | (_, DataType::Real) => DataType::Real,
                _ => DataType::Any,
            },
        },
        PhysExpr::IsNull { .. } | PhysExpr::InList { .. } | PhysExpr::Between { .. } => {
            DataType::Integer
        }
        PhysExpr::Like { .. } => DataType::Integer,
        _ => DataType::Any,
    }
}

/// Result type of one aggregate, given the input column types.
fn agg_type(a: &AggSpec, input: &[DataType]) -> DataType {
    let arg = a.arg.as_ref().map(|e| expr_type(e, input));
    match a.func {
        AggregateFunc::Count => DataType::Integer,
        AggregateFunc::Avg => DataType::Real,
        AggregateFunc::Sum => match arg {
            Some(DataType::Integer) => DataType::Integer,
            Some(DataType::Real) => DataType::Real,
            _ => DataType::Any,
        },
        AggregateFunc::Min | AggregateFunc::Max => arg.unwrap_or(DataType::Any),
    }
}

// ---------------------------------------------------------------------------
// Vectorized-mode grammar, re-derived
// ---------------------------------------------------------------------------

/// Cross-check every mode-capable operator's label against an independent
/// re-derivation of the kernel eligibility grammar, reporting divergence as
/// violations. `labeled` is the engine's own labeling (what `EXPLAIN`
/// prints and `sys.metrics` counts); the re-derivation below is written
/// from the documented grammar in `exec::vector`'s module docs, not shared
/// with it.
pub(crate) fn check_mode_labels(plan: &PhysPlan, checker_violations: &mut Vec<Violation>) {
    let labeled = crate::exec::node_mode(plan);
    let derived = derived_mode(plan);
    if labeled != derived {
        checker_violations.push(Violation {
            rule: VerifyRule::VectorizedMode,
            node: crate::explain::op_label(plan),
            message: format!(
                "labeled mode {} but the eligibility grammar derives {}",
                mode_name(labeled),
                mode_name(derived)
            ),
        });
    }
    for child in plan_children(plan) {
        check_mode_labels(child, checker_violations);
    }
}

fn mode_name(mode: Option<bool>) -> &'static str {
    match mode {
        Some(true) => "vectorized",
        Some(false) => "row",
        None => "none (no vectorized variant)",
    }
}

fn plan_children(plan: &PhysPlan) -> Vec<&PhysPlan> {
    match plan {
        PhysPlan::Scan { .. }
        | PhysPlan::VirtualScan { .. }
        | PhysPlan::IndexScan { .. }
        | PhysPlan::OneRow => Vec::new(),
        PhysPlan::Filter { input, .. }
        | PhysPlan::Project { input, .. }
        | PhysPlan::Aggregate { input, .. }
        | PhysPlan::Window { input, .. }
        | PhysPlan::Sort { input, .. }
        | PhysPlan::Limit { input, .. }
        | PhysPlan::Distinct { input } => vec![input],
        PhysPlan::HashJoin { left, right, .. } | PhysPlan::NestedLoopJoin { left, right, .. } => {
            vec![left, right]
        }
        PhysPlan::IndexJoin { probe, inner, .. } => vec![probe, inner],
        PhysPlan::UnionAll { inputs } => inputs.iter().collect(),
    }
}

/// Independent re-derivation of the vectorized eligibility grammar, written
/// from the documented rules:
///
/// * a `Scan` runs vectorized iff it carries a columnar chunk slot;
/// * `Filter` predicates must be comparisons / `IS NULL` / `BETWEEN` over
///   bare columns and literals, composed with `AND`/`OR`;
/// * `Project` lists must be bare columns and literals only;
/// * `Aggregate` needs simple keys and non-DISTINCT aggregates over simple
///   (or absent) arguments;
/// * a node runs vectorized only if everything below it does, down to a
///   chunk-carrying scan;
/// * every other operator has no vectorized variant.
fn derived_mode(plan: &PhysPlan) -> Option<bool> {
    match plan {
        PhysPlan::Scan { chunks, .. } => Some(chunks.is_some()),
        PhysPlan::Filter { input, predicate } => {
            Some(grammar_filter(predicate) && derived_mode(input) == Some(true))
        }
        PhysPlan::Project { input, exprs } => {
            Some(exprs.iter().all(grammar_simple) && derived_mode(input) == Some(true))
        }
        PhysPlan::Aggregate { input, keys, aggs } => Some(
            keys.iter().all(grammar_simple)
                && aggs
                    .iter()
                    .all(|a| !a.distinct && a.arg.as_ref().is_none_or(grammar_simple))
                && derived_mode(input) == Some(true),
        ),
        _ => None,
    }
}

fn grammar_simple(e: &PhysExpr) -> bool {
    matches!(e, PhysExpr::Column(_) | PhysExpr::Literal(_))
}

fn grammar_filter(pred: &PhysExpr) -> bool {
    match pred {
        PhysExpr::Binary { left, op, right } => match op {
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => grammar_simple(left) && grammar_simple(right),
            BinaryOp::And | BinaryOp::Or => grammar_filter(left) && grammar_filter(right),
            _ => false,
        },
        PhysExpr::IsNull { expr, .. } => grammar_simple(expr),
        PhysExpr::Between {
            expr, low, high, ..
        } => grammar_simple(expr) && grammar_simple(low) && grammar_simple(high),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_and_order_are_stable() {
        let names: Vec<&str> = VerifyRule::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            vec![
                "schema",
                "index-keys",
                "vectorized-mode",
                "param-slots",
                "merge-determinism"
            ]
        );
    }

    #[test]
    fn type_compatibility_is_lenient_only_between_numerics() {
        // `Any` (NULL, unobserved) is a wildcard; numerics promote freely;
        // only a text/numeric clash is a definite violation.
        assert!(compatible(DataType::Any, DataType::Text));
        assert!(compatible(DataType::Integer, DataType::Any));
        assert!(compatible(DataType::Integer, DataType::Real));
        assert!(compatible(DataType::Text, DataType::Text));
        assert!(!compatible(DataType::Text, DataType::Integer));
        assert!(!compatible(DataType::Real, DataType::Text));
    }

    #[test]
    fn report_into_result_lists_every_violation_with_its_class() {
        let report = VerifyReport {
            nodes: 3,
            violations: vec![
                Violation {
                    rule: VerifyRule::Schema,
                    node: "Project".to_string(),
                    message: "width mismatch".to_string(),
                },
                Violation {
                    rule: VerifyRule::IndexKeys,
                    node: "IndexScan".to_string(),
                    message: "dangling index".to_string(),
                },
            ],
        };
        assert!(!report.ok());
        assert!(report.first_of(VerifyRule::Schema).is_some());
        assert!(report.first_of(VerifyRule::ParamSlots).is_none());
        let err = report
            .into_result(crate::error::Span::new(0, 10))
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("2 invariant violation(s)"), "{msg}");
        assert!(msg.contains("[schema] Project: width mismatch"), "{msg}");
        assert!(msg.contains("[index-keys]"), "{msg}");
    }

    #[test]
    fn clean_report_converts_to_ok() {
        let report = VerifyReport {
            nodes: 1,
            violations: Vec::new(),
        };
        assert!(report.ok());
        assert!(report.into_result(crate::error::Span::new(0, 5)).is_ok());
    }
}
