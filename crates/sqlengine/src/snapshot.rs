//! Database snapshots: serialize the whole catalog to JSON and back.
//!
//! This backs the paper's "cost-effective model serving" discussion (§7): a
//! deployed BornSQL model is just one or two tables, so a database snapshot
//! *is* the model artifact. Snapshots are plain JSON for auditable diffs.
//!
//! The same writer backs the durability layer's checkpoints (see
//! [`crate::wal`]): a checkpoint is a snapshot plus the WAL sequence number
//! it covers. The JSON codec is implemented in-crate (no serde) so that
//! every value round-trips exactly — in particular non-finite floats, which
//! standard JSON cannot represent, are encoded as tagged objects
//! (`{"~f":"nan"}`, `{"~f":"inf"}`, `{"~f":"-inf"}`) instead of silently
//! collapsing to `null`.

use std::collections::BTreeMap;

use crate::catalog::{Catalog, Column, Schema, Table};
use crate::engine::Database;
use crate::error::{EngineError, Result};
use crate::value::{DataType, Row, Value};

/// Serializable form of one table.
pub(crate) struct TableDump {
    pub columns: Vec<(String, DataType)>,
    pub primary_key: Vec<String>,
    pub rows: Vec<Row>,
}

/// Serializable form of the whole database.
pub struct Snapshot {
    pub(crate) tables: BTreeMap<String, TableDump>,
}

impl Snapshot {
    /// Capture every table of `db`.
    pub fn capture(db: &Database) -> Result<Snapshot> {
        let mut tables = BTreeMap::new();
        for name in db.table_names() {
            let (schema, primary_key, rows) = db.dump_table(&name)?;
            tables.insert(
                name,
                TableDump {
                    columns: schema
                        .columns
                        .iter()
                        .map(|c| (c.name.clone(), c.ty))
                        .collect(),
                    primary_key,
                    rows: rows.as_ref().clone(),
                },
            );
        }
        Ok(Snapshot { tables })
    }

    /// Capture from a catalog reference directly. Used by the durability
    /// layer, which checkpoints while already holding the catalog write lock
    /// (going through [`Snapshot::capture`] would deadlock on re-entry).
    pub(crate) fn capture_catalog(catalog: &Catalog) -> Snapshot {
        let mut tables = BTreeMap::new();
        for name in catalog.table_names() {
            let t = catalog.get(&name).expect("table_names() names exist");
            let primary_key = t
                .primary
                .as_ref()
                .map(|p| {
                    p.key_columns
                        .iter()
                        .map(|&i| t.schema.columns[i].name.clone())
                        .collect()
                })
                .unwrap_or_default();
            tables.insert(
                name,
                TableDump {
                    columns: t
                        .schema
                        .columns
                        .iter()
                        .map(|c| (c.name.clone(), c.ty))
                        .collect(),
                    primary_key,
                    rows: t.rows.as_ref().clone(),
                },
            );
        }
        Snapshot { tables }
    }

    /// Build the catalog tables this snapshot describes (rows inserted, all
    /// indexes populated). Shared by [`Snapshot::restore_into`] and WAL
    /// recovery.
    pub(crate) fn build_tables(self) -> Result<Vec<Table>> {
        let mut out = Vec::with_capacity(self.tables.len());
        for (name, dump) in self.tables {
            let schema = Schema::new(
                dump.columns
                    .into_iter()
                    .map(|(name, ty)| Column { name, ty })
                    .collect(),
            );
            let mut table = Table::new(name, schema, &dump.primary_key)?;
            for row in dump.rows {
                table.insert_row(row, None)?;
            }
            out.push(table);
        }
        Ok(out)
    }

    /// Restore into a fresh database (tables must not already exist).
    pub fn restore_into(self, db: &Database) -> Result<()> {
        for table in self.build_tables()? {
            db.install_table(table)?;
        }
        Ok(())
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> Result<String> {
        let mut out = String::with_capacity(256);
        out.push_str("{\"tables\":");
        self.write_tables(&mut out);
        out.push('}');
        Ok(out)
    }

    /// Write the `{"name":{...}}` table map (shared with checkpoints).
    pub(crate) fn write_tables(&self, out: &mut String) {
        out.push('{');
        for (i, (name, dump)) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, name);
            out.push_str(":{\"columns\":[");
            for (j, (col, ty)) in dump.columns.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                write_json_string(out, col);
                out.push(',');
                write_json_string(out, datatype_name(*ty));
                out.push(']');
            }
            out.push_str("],\"primary_key\":[");
            for (j, pk) in dump.primary_key.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_json_string(out, pk);
            }
            out.push_str("],\"rows\":[");
            for (j, row) in dump.rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                for (k, v) in row.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_json_value(out, v);
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push('}');
    }

    /// Deserialize from a JSON string.
    pub fn from_json(json: &str) -> Result<Snapshot> {
        let doc = parse_json(json)?;
        let obj = doc
            .as_object()
            .ok_or_else(|| corrupt("top level is not an object"))?;
        let tables = obj
            .iter()
            .find(|(k, _)| k == "tables")
            .map(|(_, v)| v)
            .ok_or_else(|| corrupt("missing 'tables' key"))?;
        Self::tables_from_json(tables)
    }

    /// Build a snapshot from a parsed `tables` map (shared with checkpoints).
    pub(crate) fn tables_from_json(tables: &Json) -> Result<Snapshot> {
        let tables_obj = tables
            .as_object()
            .ok_or_else(|| corrupt("'tables' is not an object"))?;
        let mut out = BTreeMap::new();
        for (name, tv) in tables_obj {
            let t = tv
                .as_object()
                .ok_or_else(|| corrupt("table entry is not an object"))?;
            let field = |key: &str| -> Result<&Json> {
                t.iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .ok_or_else(|| corrupt(format!("table missing '{key}'")))
            };
            let columns = field("columns")?
                .as_array()
                .ok_or_else(|| corrupt("'columns' is not an array"))?
                .iter()
                .map(|c| {
                    let pair = c
                        .as_array()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| corrupt("column entry is not a 2-array"))?;
                    let name = pair[0]
                        .as_str()
                        .ok_or_else(|| corrupt("column name is not a string"))?;
                    let ty = pair[1]
                        .as_str()
                        .and_then(datatype_from_name)
                        .ok_or_else(|| corrupt("unknown column type"))?;
                    Ok((name.to_string(), ty))
                })
                .collect::<Result<Vec<_>>>()?;
            let primary_key = field("primary_key")?
                .as_array()
                .ok_or_else(|| corrupt("'primary_key' is not an array"))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| corrupt("primary key entry is not a string"))
                })
                .collect::<Result<Vec<_>>>()?;
            let rows = field("rows")?
                .as_array()
                .ok_or_else(|| corrupt("'rows' is not an array"))?
                .iter()
                .map(|r| {
                    r.as_array()
                        .ok_or_else(|| corrupt("row is not an array"))?
                        .iter()
                        .map(json_to_value)
                        .collect::<Result<Row>>()
                })
                .collect::<Result<Vec<Row>>>()?;
            out.insert(
                name.clone(),
                TableDump {
                    columns,
                    primary_key,
                    rows,
                },
            );
        }
        Ok(Snapshot { tables: out })
    }
}

fn corrupt(msg: impl std::fmt::Display) -> EngineError {
    EngineError::exec(format!("snapshot deserialization failed: {msg}"))
}

fn datatype_name(ty: DataType) -> &'static str {
    match ty {
        DataType::Integer => "Integer",
        DataType::Real => "Real",
        DataType::Text => "Text",
        DataType::Any => "Any",
    }
}

fn datatype_from_name(name: &str) -> Option<DataType> {
    match name {
        "Integer" => Some(DataType::Integer),
        "Real" => Some(DataType::Real),
        "Text" => Some(DataType::Text),
        "Any" => Some(DataType::Any),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Value <-> JSON
// ---------------------------------------------------------------------------

/// Encode one SQL value as JSON. Non-finite floats get an explicit tagged
/// encoding because JSON has no literal for them — the previous serde-based
/// codec serialized `NaN`/`±Infinity` as `null`, corrupting round-trips.
pub(crate) fn write_json_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) if f.is_nan() => out.push_str("{\"~f\":\"nan\"}"),
        Value::Float(f) if f.is_infinite() => {
            out.push_str(if *f > 0.0 {
                "{\"~f\":\"inf\"}"
            } else {
                "{\"~f\":\"-inf\"}"
            });
        }
        // `{:?}` prints the shortest representation that parses back to the
        // same f64 and always keeps a `.` or exponent, so floats stay
        // distinguishable from ints.
        Value::Float(f) => out.push_str(&format!("{f:?}")),
        Value::Str(s) => write_json_string(out, s),
    }
}

pub(crate) fn json_to_value(j: &Json) -> Result<Value> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Float(f) => Ok(Value::Float(*f)),
        Json::Str(s) => Ok(Value::text(s)),
        Json::Object(fields) => match fields.as_slice() {
            [(k, Json::Str(tag))] if k == "~f" => match tag.as_str() {
                "nan" => Ok(Value::Float(f64::NAN)),
                "inf" => Ok(Value::Float(f64::INFINITY)),
                "-inf" => Ok(Value::Float(f64::NEG_INFINITY)),
                other => Err(corrupt(format!("unknown float tag '{other}'"))),
            },
            _ => Err(corrupt("unexpected object in row")),
        },
        _ => Err(corrupt("unexpected value in row")),
    }
}

pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Minimal JSON parser
// ---------------------------------------------------------------------------

/// A parsed JSON document. Numbers keep the int/float distinction (a token
/// with `.`/`e`/`E` parses as a float) so SQL `Int` and `Float` round-trip
/// without type drift.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub(crate) fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Field lookup on objects.
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

pub(crate) fn parse_json(text: &str) -> Result<Json> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(corrupt(format!("trailing data at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, b: u8) -> Result<()> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(corrupt(format!(
            "expected '{}' at byte {}",
            b as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(corrupt("unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect_byte(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(corrupt(format!("expected ',' or '}}' at byte {}", *pos))),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(corrupt(format!("expected ',' or ']' at byte {}", *pos))),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(corrupt(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| corrupt(format!("invalid number at byte {start}")))?;
    if token.is_empty() {
        return Err(corrupt(format!("unexpected character at byte {start}")));
    }
    if token.contains(['.', 'e', 'E']) {
        token
            .parse::<f64>()
            .map(Json::Float)
            .map_err(|_| corrupt(format!("invalid float '{token}'")))
    } else {
        // Integer token; fall back to f64 on i64 overflow.
        token
            .parse::<i64>()
            .map(Json::Int)
            .or_else(|_| token.parse::<f64>().map(Json::Float))
            .map_err(|_| corrupt(format!("invalid number '{token}'")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(corrupt("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| corrupt("invalid \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(corrupt("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| corrupt("invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("non-empty by match arm");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

impl Database {
    /// Persist the whole database to a JSON snapshot file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let json = Snapshot::capture(self)?.to_json()?;
        std::fs::write(path.as_ref(), json)
            .map_err(|e| EngineError::exec(format!("cannot write snapshot: {e}")))
    }

    /// Open a database from a JSON snapshot file written by
    /// [`Database::save`].
    ///
    /// For a durable database with a write-ahead log and crash recovery, use
    /// [`Database::open`] / [`Database::persistent`] instead.
    pub fn open_snapshot(path: impl AsRef<std::path::Path>) -> Result<Database> {
        let json = std::fs::read_to_string(path.as_ref())
            .map_err(|e| EngineError::exec(format!("cannot read snapshot: {e}")))?;
        let db = Database::new();
        Snapshot::from_json(&json)?.restore_into(&db)?;
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_and_open_roundtrip_on_disk() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, 'y');",
        )
        .unwrap();
        let path = std::env::temp_dir().join(format!(
            "sqlengine_snapshot_test_{}.json",
            std::process::id()
        ));
        db.save(&path).unwrap();
        let db2 = Database::open_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(db2.table_rows("t").unwrap(), 2);
        assert!(db2.execute("INSERT INTO t VALUES (1, 'dup')").is_err());
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE m_corpus (j TEXT, k INTEGER, w REAL, PRIMARY KEY (j, k));
             INSERT INTO m_corpus VALUES ('a', 17, 0.5), ('b', 26, 1.25);
             CREATE TABLE params (model TEXT PRIMARY KEY, a REAL, b REAL, h REAL);
             INSERT INTO params VALUES ('m', 0.5, 1.0, 1.0);",
        )
        .unwrap();

        let json = Snapshot::capture(&db).unwrap().to_json().unwrap();
        let db2 = Database::new();
        Snapshot::from_json(&json)
            .unwrap()
            .restore_into(&db2)
            .unwrap();

        let r = db2
            .query("SELECT j, k, w FROM m_corpus ORDER BY j")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::text("a"), Value::Int(17), Value::Float(0.5)],
                vec![Value::text("b"), Value::Int(26), Value::Float(1.25)],
            ]
        );
        // The primary key survived: upserts still work.
        db2.execute(
            "INSERT INTO m_corpus VALUES ('a', 17, 1.0) \
             ON CONFLICT (j, k) DO UPDATE SET w = m_corpus.w + excluded.w",
        )
        .unwrap();
        assert_eq!(
            db2.query("SELECT w FROM m_corpus WHERE j = 'a'")
                .unwrap()
                .rows[0][0],
            Value::Float(1.5)
        );
    }

    #[test]
    fn nulls_and_types_roundtrip() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE t (a INTEGER, b REAL, c TEXT);
             INSERT INTO t VALUES (1, 2.5, 'x'), (NULL, NULL, NULL);",
        )
        .unwrap();
        let json = Snapshot::capture(&db).unwrap().to_json().unwrap();
        let db2 = Database::new();
        Snapshot::from_json(&json)
            .unwrap()
            .restore_into(&db2)
            .unwrap();
        let r = db2.query("SELECT a, b, c FROM t ORDER BY a").unwrap();
        assert_eq!(r.rows[0], vec![Value::Null, Value::Null, Value::Null]);
        assert_eq!(
            r.rows[1],
            vec![Value::Int(1), Value::Float(2.5), Value::text("x")]
        );
    }

    #[test]
    fn non_finite_floats_roundtrip() {
        // The old untagged serde codec wrote NaN/±inf as JSON null; the
        // tagged encoding must restore them exactly.
        let db = Database::new();
        db.execute("CREATE TABLE t (id INTEGER, v REAL)").unwrap();
        db.insert_rows(
            "t",
            vec![
                vec![Value::Int(1), Value::Float(f64::NAN)],
                vec![Value::Int(2), Value::Float(f64::INFINITY)],
                vec![Value::Int(3), Value::Float(f64::NEG_INFINITY)],
                vec![Value::Int(4), Value::Float(-0.0)],
                vec![Value::Int(5), Value::Null],
            ],
        )
        .unwrap();
        let json = Snapshot::capture(&db).unwrap().to_json().unwrap();
        let db2 = Database::new();
        Snapshot::from_json(&json)
            .unwrap()
            .restore_into(&db2)
            .unwrap();
        let r = db2.query("SELECT v FROM t ORDER BY id").unwrap();
        match &r.rows[0][0] {
            Value::Float(f) => assert!(f.is_nan(), "NaN must survive, got {f}"),
            other => panic!("expected NaN float, got {other:?}"),
        }
        assert_eq!(r.rows[1][0], Value::Float(f64::INFINITY));
        assert_eq!(r.rows[2][0], Value::Float(f64::NEG_INFINITY));
        match &r.rows[3][0] {
            Value::Float(f) => assert!(f.is_sign_negative() && *f == 0.0, "-0.0 must survive"),
            other => panic!("expected -0.0 float, got {other:?}"),
        }
        assert_eq!(r.rows[4][0], Value::Null);
    }

    #[test]
    fn tricky_strings_and_floats_roundtrip() {
        let db = Database::new();
        db.execute("CREATE TABLE t (id INTEGER, s TEXT, f REAL)")
            .unwrap();
        db.insert_rows(
            "t",
            vec![
                vec![
                    Value::Int(1),
                    Value::text("quote \" backslash \\ newline \n tab \t unicode é✓"),
                    Value::Float(0.1),
                ],
                vec![
                    Value::Int(2),
                    Value::text("control \u{0001} char"),
                    Value::Float(1e300),
                ],
                vec![
                    Value::Int(3),
                    Value::text(""),
                    Value::Float(f64::MIN_POSITIVE),
                ],
            ],
        )
        .unwrap();
        let json = Snapshot::capture(&db).unwrap().to_json().unwrap();
        let db2 = Database::new();
        Snapshot::from_json(&json)
            .unwrap()
            .restore_into(&db2)
            .unwrap();
        let orig = db.query("SELECT id, s, f FROM t ORDER BY id").unwrap();
        let restored = db2.query("SELECT id, s, f FROM t ORDER BY id").unwrap();
        assert_eq!(orig.rows, restored.rows);
    }

    #[test]
    fn legacy_serde_format_still_parses() {
        // Output captured from the previous serde_json-based codec.
        let json = r#"{"tables":{"t":{"columns":[["id","Integer"],["w","Real"],["s","Text"]],"primary_key":["id"],"rows":[[1,0.5,"x"],[2,null,null]]}}}"#;
        let db = Database::new();
        Snapshot::from_json(json)
            .unwrap()
            .restore_into(&db)
            .unwrap();
        let r = db.query("SELECT id, w, s FROM t ORDER BY id").unwrap();
        assert_eq!(
            r.rows[0],
            vec![Value::Int(1), Value::Float(0.5), Value::text("x")]
        );
        assert_eq!(r.rows[1], vec![Value::Int(2), Value::Null, Value::Null]);
    }
}
