//! Database snapshots: serialize the whole catalog to JSON and back.
//!
//! This backs the paper's "cost-effective model serving" discussion (§7): a
//! deployed BornSQL model is just one or two tables, so a database snapshot
//! *is* the model artifact. Snapshots are plain JSON for auditable diffs.

use std::collections::BTreeMap;

use crate::catalog::{Column, Schema, Table};
use crate::engine::Database;
use crate::error::{EngineError, Result};
use crate::value::{DataType, Row, Value};

/// Serializable form of one value.
#[derive(serde::Serialize, serde::Deserialize)]
#[serde(untagged)]
enum JsonValue {
    Null(Option<()>),
    Int(i64),
    Float(f64),
    Str(String),
}

impl From<&Value> for JsonValue {
    fn from(v: &Value) -> Self {
        match v {
            Value::Null => JsonValue::Null(None),
            Value::Int(i) => JsonValue::Int(*i),
            Value::Float(f) => JsonValue::Float(*f),
            Value::Str(s) => JsonValue::Str(s.to_string()),
        }
    }
}

impl From<JsonValue> for Value {
    fn from(v: JsonValue) -> Self {
        match v {
            JsonValue::Null(_) => Value::Null,
            JsonValue::Int(i) => Value::Int(i),
            JsonValue::Float(f) => Value::Float(f),
            JsonValue::Str(s) => Value::text(s),
        }
    }
}

/// Serializable form of one table.
#[derive(serde::Serialize, serde::Deserialize)]
struct JsonTable {
    columns: Vec<(String, DataType)>,
    primary_key: Vec<String>,
    rows: Vec<Vec<JsonValue>>,
}

/// Serializable form of the whole database.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    tables: BTreeMap<String, JsonTable>,
}

impl Snapshot {
    /// Capture every table of `db`.
    pub fn capture(db: &Database) -> Result<Snapshot> {
        let mut tables = BTreeMap::new();
        for name in db.table_names() {
            let (schema, primary_key, rows) = db.dump_table(&name)?;
            tables.insert(
                name,
                JsonTable {
                    columns: schema
                        .columns
                        .iter()
                        .map(|c| (c.name.clone(), c.ty))
                        .collect(),
                    primary_key,
                    rows: rows
                        .iter()
                        .map(|r| r.iter().map(JsonValue::from).collect())
                        .collect(),
                },
            );
        }
        Ok(Snapshot { tables })
    }

    /// Restore into a fresh database (tables must not already exist).
    pub fn restore_into(self, db: &Database) -> Result<()> {
        for (name, jt) in self.tables {
            let schema = Schema::new(
                jt.columns
                    .into_iter()
                    .map(|(name, ty)| Column { name, ty })
                    .collect(),
            );
            let rows: Vec<Row> = jt
                .rows
                .into_iter()
                .map(|r| r.into_iter().map(Value::from).collect())
                .collect();
            db.restore_table(Table::new(name, schema, &jt.primary_key)?, rows)?;
        }
        Ok(())
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| EngineError::exec(format!("snapshot serialization failed: {e}")))
    }

    /// Deserialize from a JSON string.
    pub fn from_json(json: &str) -> Result<Snapshot> {
        serde_json::from_str(json)
            .map_err(|e| EngineError::exec(format!("snapshot deserialization failed: {e}")))
    }
}

impl Database {
    /// Persist the whole database to a JSON file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let json = Snapshot::capture(self)?.to_json()?;
        std::fs::write(path.as_ref(), json)
            .map_err(|e| EngineError::exec(format!("cannot write snapshot: {e}")))
    }

    /// Open a database from a JSON file written by [`Database::save`].
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Database> {
        let json = std::fs::read_to_string(path.as_ref())
            .map_err(|e| EngineError::exec(format!("cannot read snapshot: {e}")))?;
        let db = Database::new();
        Snapshot::from_json(&json)?.restore_into(&db)?;
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_and_open_roundtrip_on_disk() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, 'y');",
        )
        .unwrap();
        let path = std::env::temp_dir().join(format!(
            "sqlengine_snapshot_test_{}.json",
            std::process::id()
        ));
        db.save(&path).unwrap();
        let db2 = Database::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(db2.table_rows("t").unwrap(), 2);
        assert!(db2.execute("INSERT INTO t VALUES (1, 'dup')").is_err());
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE m_corpus (j TEXT, k INTEGER, w REAL, PRIMARY KEY (j, k));
             INSERT INTO m_corpus VALUES ('a', 17, 0.5), ('b', 26, 1.25);
             CREATE TABLE params (model TEXT PRIMARY KEY, a REAL, b REAL, h REAL);
             INSERT INTO params VALUES ('m', 0.5, 1.0, 1.0);",
        )
        .unwrap();

        let json = Snapshot::capture(&db).unwrap().to_json().unwrap();
        let db2 = Database::new();
        Snapshot::from_json(&json)
            .unwrap()
            .restore_into(&db2)
            .unwrap();

        let r = db2
            .query("SELECT j, k, w FROM m_corpus ORDER BY j")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::text("a"), Value::Int(17), Value::Float(0.5)],
                vec![Value::text("b"), Value::Int(26), Value::Float(1.25)],
            ]
        );
        // The primary key survived: upserts still work.
        db2.execute(
            "INSERT INTO m_corpus VALUES ('a', 17, 1.0) \
             ON CONFLICT (j, k) DO UPDATE SET w = m_corpus.w + excluded.w",
        )
        .unwrap();
        assert_eq!(
            db2.query("SELECT w FROM m_corpus WHERE j = 'a'")
                .unwrap()
                .rows[0][0],
            Value::Float(1.5)
        );
    }

    #[test]
    fn nulls_and_types_roundtrip() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE t (a INTEGER, b REAL, c TEXT);
             INSERT INTO t VALUES (1, 2.5, 'x'), (NULL, NULL, NULL);",
        )
        .unwrap();
        let json = Snapshot::capture(&db).unwrap().to_json().unwrap();
        let db2 = Database::new();
        Snapshot::from_json(&json)
            .unwrap()
            .restore_into(&db2)
            .unwrap();
        let r = db2.query("SELECT a, b, c FROM t ORDER BY a").unwrap();
        assert_eq!(r.rows[0], vec![Value::Null, Value::Null, Value::Null]);
        assert_eq!(
            r.rows[1],
            vec![Value::Int(1), Value::Float(2.5), Value::text("x")]
        );
    }
}
