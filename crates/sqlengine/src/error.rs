//! Error types for the SQL engine.

use std::fmt;

/// A half-open byte range `start..end` into the original SQL text.
///
/// Spans are *annotations*: two AST nodes that differ only in their spans are
/// considered equal, so `PartialEq` here is always true. This keeps the
/// planner's structural rewrites (subtree replacement, aggregate
/// deduplication) span-agnostic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start: start as u32,
            end: end as u32,
        }
    }

    /// The smallest span covering both `self` and `other`. An empty
    /// (default) span is treated as absent.
    pub fn cover(self, other: Span) -> Span {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    pub fn range(self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }
}

impl PartialEq for Span {
    /// Always true: spans never participate in structural equality.
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for Span {}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Render a single-line caret snippet pointing at `span` within `sql`, or an
/// empty string when the span is empty / out of bounds.
pub fn span_snippet(sql: &str, span: Span) -> String {
    let (start, end) = (span.start as usize, span.end as usize);
    if span.is_empty() || end > sql.len() || start > end {
        return String::new();
    }
    // Locate the line containing the span start.
    let line_start = sql[..start].rfind('\n').map(|p| p + 1).unwrap_or(0);
    let line_end = sql[start..]
        .find('\n')
        .map(|p| start + p)
        .unwrap_or(sql.len());
    let line = &sql[line_start..line_end];
    let col = start - line_start;
    let width = end.min(line_end).saturating_sub(start).max(1);
    format!("{line}\n{:col$}{}", "", "^".repeat(width), col = col)
}

/// Any error produced while lexing, parsing, planning, or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Lexical error: unexpected character, unterminated string, bad number.
    Lex { message: String, position: usize },
    /// Syntax error produced by the parser.
    Parse { message: String, position: usize },
    /// Static semantic error found before planning (unknown table/column,
    /// ambiguous reference, aggregate misuse, type mismatch, ...), carrying
    /// the byte span of the offending source fragment.
    Sema { message: String, span: Span },
    /// Semantic error produced during planning (unknown table/column,
    /// ambiguous reference, wrong arity, ...).
    Plan(String),
    /// Runtime error produced during execution (type mismatch, division by
    /// zero on integers, constraint violation, ...).
    Exec(String),
    /// Catalog error: table already exists / does not exist, etc.
    Catalog(String),
    /// A statement referenced a parameter that was not bound.
    Parameter(String),
    /// The statement exceeded `EngineConfig::statement_timeout`. Checked at
    /// operator and morsel boundaries, so a pathological plan (e.g. an
    /// unconstrained cross join) is cancelled instead of running unbounded.
    Timeout,
    /// A durability (write-ahead log / checkpoint) failure. The in-memory
    /// state is still consistent, but the change that triggered the error
    /// may not be durable.
    Wal(String),
    /// The post-planning static verifier rejected a physical plan: some
    /// cross-layer invariant (output schema, index keys, vectorized-mode
    /// labels, parameter slots, merge determinism) does not hold. Carries
    /// the span of the statement the plan was built for, so diagnostics can
    /// point back at the source text.
    Verify { message: String, span: Span },
    /// The statement exceeded its `EngineConfig::memory_budget`: a
    /// pipeline-breaking operator (hash-join build, aggregate table, sort
    /// run, dedup set, batch literal table) would have allocated past the
    /// per-statement budget. The statement is aborted instead of letting the
    /// process OOM; retrying with a smaller working set (or a larger budget)
    /// can succeed. Carries the span of the statement when known.
    ResourceExhausted { message: String, span: Span },
    /// The admission gate shed this statement: `max_concurrent_statements`
    /// were already running and the wait queue was full, or the caller's
    /// deadline would have expired while queued. Always retryable — back off
    /// and resubmit.
    Overloaded(String),
}

impl EngineError {
    pub(crate) fn plan(msg: impl Into<String>) -> Self {
        EngineError::Plan(msg.into())
    }

    pub(crate) fn exec(msg: impl Into<String>) -> Self {
        EngineError::Exec(msg.into())
    }

    pub(crate) fn catalog(msg: impl Into<String>) -> Self {
        EngineError::Catalog(msg.into())
    }

    pub(crate) fn sema(msg: impl Into<String>, span: Span) -> Self {
        EngineError::Sema {
            message: msg.into(),
            span,
        }
    }

    pub(crate) fn wal(msg: impl Into<String>) -> Self {
        EngineError::Wal(msg.into())
    }

    pub(crate) fn verify(msg: impl Into<String>, span: Span) -> Self {
        EngineError::Verify {
            message: msg.into(),
            span,
        }
    }

    pub(crate) fn resource_exhausted(msg: impl Into<String>, span: Span) -> Self {
        EngineError::ResourceExhausted {
            message: msg.into(),
            span,
        }
    }

    pub(crate) fn overloaded(msg: impl Into<String>) -> Self {
        EngineError::Overloaded(msg.into())
    }

    /// True for errors that describe a transient condition of the *system*
    /// rather than a defect in the statement: the same statement can succeed
    /// if the caller backs off and retries (possibly after faults heal or
    /// load drains). Serving layers use this to separate "retry with
    /// backoff" from "fix your query".
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            EngineError::Timeout
                | EngineError::Wal(_)
                | EngineError::ResourceExhausted { .. }
                | EngineError::Overloaded(_)
        )
    }

    /// Attach the whole-statement span to errors that are raised without
    /// source context (deep in the executor) but should still point at the
    /// statement text. No-op for errors that already carry a span.
    pub(crate) fn with_statement_span(self, sql: &str) -> Self {
        match self {
            EngineError::ResourceExhausted { message, span } if span.is_empty() => {
                EngineError::ResourceExhausted {
                    message,
                    span: Span::new(0, sql.len()),
                }
            }
            other => other,
        }
    }

    /// The error message without the variant prefix.
    pub fn message(&self) -> &str {
        match self {
            EngineError::Lex { message, .. }
            | EngineError::Parse { message, .. }
            | EngineError::Sema { message, .. }
            | EngineError::Verify { message, .. }
            | EngineError::ResourceExhausted { message, .. } => message,
            EngineError::Plan(m)
            | EngineError::Exec(m)
            | EngineError::Catalog(m)
            | EngineError::Parameter(m)
            | EngineError::Wal(m)
            | EngineError::Overloaded(m) => m,
            EngineError::Timeout => "statement timeout exceeded",
        }
    }

    /// Render the error with a caret snippet of the offending source when a
    /// span is available.
    pub fn display_with_source(&self, sql: &str) -> String {
        match self {
            EngineError::Sema { span, .. }
            | EngineError::Verify { span, .. }
            | EngineError::ResourceExhausted { span, .. }
                if !span.is_empty() =>
            {
                let snippet = span_snippet(sql, *span);
                if snippet.is_empty() {
                    self.to_string()
                } else {
                    format!("{self}\n{snippet}")
                }
            }
            _ => self.to_string(),
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Lex { message, position } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            EngineError::Parse { message, position } => {
                write!(f, "parse error at token {position}: {message}")
            }
            EngineError::Sema { message, span } => {
                if span.is_empty() {
                    write!(f, "sema error: {message}")
                } else {
                    write!(f, "sema error at byte {span}: {message}")
                }
            }
            EngineError::Plan(m) => write!(f, "plan error: {m}"),
            EngineError::Exec(m) => write!(f, "execution error: {m}"),
            EngineError::Catalog(m) => write!(f, "catalog error: {m}"),
            EngineError::Parameter(m) => write!(f, "parameter error: {m}"),
            EngineError::Timeout => write!(f, "timeout: statement timeout exceeded"),
            EngineError::Wal(m) => write!(f, "durability error: {m}"),
            EngineError::Verify { message, span } => {
                if span.is_empty() {
                    write!(f, "plan verification failed: {message}")
                } else {
                    write!(f, "plan verification failed at byte {span}: {message}")
                }
            }
            EngineError::ResourceExhausted { message, span } => {
                if span.is_empty() {
                    write!(f, "resource exhausted: {message}")
                } else {
                    write!(f, "resource exhausted at byte {span}: {message}")
                }
            }
            EngineError::Overloaded(m) => write!(f, "overloaded: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_equality_transparent() {
        assert_eq!(Span::new(0, 5), Span::new(7, 9));
    }

    #[test]
    fn cover_merges_and_ignores_empty() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        let c = a.cover(b);
        assert_eq!((c.start, c.end), (3, 12));
        let d = Span::default().cover(a);
        assert_eq!((d.start, d.end), (3, 7));
        let e = a.cover(Span::default());
        assert_eq!((e.start, e.end), (3, 7));
    }

    #[test]
    fn snippet_points_at_span() {
        let sql = "SELECT bogus FROM t";
        let s = span_snippet(sql, Span::new(7, 12));
        assert_eq!(s, "SELECT bogus FROM t\n       ^^^^^");
    }

    #[test]
    fn retryability_taxonomy() {
        assert!(EngineError::Timeout.is_retryable());
        assert!(EngineError::wal("disk hiccup").is_retryable());
        assert!(EngineError::resource_exhausted("budget", Span::default()).is_retryable());
        assert!(EngineError::overloaded("queue full").is_retryable());
        assert!(!EngineError::exec("type mismatch").is_retryable());
        assert!(!EngineError::plan("unknown table").is_retryable());
        assert!(!EngineError::catalog("exists").is_retryable());
        assert!(!EngineError::sema("bad ref", Span::default()).is_retryable());
    }

    #[test]
    fn statement_span_attaches_only_when_missing() {
        let e = EngineError::resource_exhausted("over budget", Span::default())
            .with_statement_span("SELECT 1");
        let EngineError::ResourceExhausted { span, .. } = e else {
            panic!("variant preserved");
        };
        assert_eq!((span.start, span.end), (0, 8));
        // Non-resource errors pass through untouched.
        let e = EngineError::exec("boom").with_statement_span("SELECT 1");
        assert_eq!(e, EngineError::exec("boom"));
    }

    #[test]
    fn snippet_handles_multiline() {
        let sql = "SELECT a\nFROM missing";
        let s = span_snippet(sql, Span::new(14, 21));
        assert_eq!(s, "FROM missing\n     ^^^^^^^");
    }
}
