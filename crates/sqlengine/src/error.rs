//! Error types for the SQL engine.

use std::fmt;

/// Any error produced while lexing, parsing, planning, or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Lexical error: unexpected character, unterminated string, bad number.
    Lex { message: String, position: usize },
    /// Syntax error produced by the parser.
    Parse { message: String, position: usize },
    /// Semantic error produced during planning (unknown table/column,
    /// ambiguous reference, wrong arity, ...).
    Plan(String),
    /// Runtime error produced during execution (type mismatch, division by
    /// zero on integers, constraint violation, ...).
    Exec(String),
    /// Catalog error: table already exists / does not exist, etc.
    Catalog(String),
    /// A statement referenced a parameter that was not bound.
    Parameter(String),
}

impl EngineError {
    pub(crate) fn plan(msg: impl Into<String>) -> Self {
        EngineError::Plan(msg.into())
    }

    pub(crate) fn exec(msg: impl Into<String>) -> Self {
        EngineError::Exec(msg.into())
    }

    pub(crate) fn catalog(msg: impl Into<String>) -> Self {
        EngineError::Catalog(msg.into())
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Lex { message, position } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            EngineError::Parse { message, position } => {
                write!(f, "parse error at token {position}: {message}")
            }
            EngineError::Plan(m) => write!(f, "plan error: {m}"),
            EngineError::Exec(m) => write!(f, "execution error: {m}"),
            EngineError::Catalog(m) => write!(f, "catalog error: {m}"),
            EngineError::Parameter(m) => write!(f, "parameter error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, EngineError>;
