//! Physical plan execution.
//!
//! Operators are executed bottom-up, each producing a materialized
//! `Vec<Row>`. For the sparse-tensor workloads BornSQL generates this is
//! cache-friendly and keeps the code auditable; the working sets are bounded
//! by the size of the (sparse) intermediate tensors.

use std::collections::{HashMap, HashSet};

use crate::ast::{AggregateFunc, JoinKind};
use crate::error::{EngineError, Result};
use crate::expr::PhysExpr;
use crate::plan::{AggSpec, PhysPlan};
use crate::value::{Row, Value};

/// Execute a plan to completion.
pub fn execute(plan: &PhysPlan) -> Result<Vec<Row>> {
    match plan {
        PhysPlan::Scan { rows, .. } => Ok(rows.as_ref().clone()),
        PhysPlan::OneRow => Ok(vec![Vec::new()]),
        PhysPlan::Filter { input, predicate } => {
            let rows = execute(input)?;
            let mut out = Vec::new();
            for row in rows {
                if predicate.eval(&row)?.as_bool()? == Some(true) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PhysPlan::Project { input, exprs } => {
            let rows = execute(input)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in &rows {
                let mut projected = Vec::with_capacity(exprs.len());
                for e in exprs {
                    projected.push(e.eval(row)?);
                }
                out.push(projected);
            }
            Ok(out)
        }
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
            right_width,
            residual,
            algo,
        } => match algo {
            crate::plan::JoinAlgo::Hash => hash_join(
                left, right, left_keys, right_keys, *kind, *right_width, residual,
            ),
            crate::plan::JoinAlgo::SortMerge => sort_merge_join(
                left, right, left_keys, right_keys, *kind, *right_width, residual,
            ),
        },
        PhysPlan::NestedLoopJoin {
            left,
            right,
            kind,
            right_width,
            predicate,
        } => nested_loop_join(left, right, *kind, *right_width, predicate),
        PhysPlan::Aggregate { input, keys, aggs } => aggregate(input, keys, aggs),
        PhysPlan::Window {
            input,
            func,
            partition,
            order,
        } => window_rank(input, *func, partition, order),
        PhysPlan::Sort { input, keys } => {
            let mut rows = execute(input)?;
            // Precompute sort keys once per row, then sort by them.
            let mut keyed: Vec<(Vec<Value>, usize)> = Vec::with_capacity(rows.len());
            for (i, row) in rows.iter().enumerate() {
                let mut kv = Vec::with_capacity(keys.len());
                for (expr, _) in keys {
                    kv.push(expr.eval(row)?);
                }
                keyed.push((kv, i));
            }
            keyed.sort_by(|(ka, ia), (kb, ib)| {
                for (i, (_, desc)) in keys.iter().enumerate() {
                    let ord = ka[i].total_cmp(&kb[i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                ia.cmp(ib) // stable
            });
            let mut out = Vec::with_capacity(rows.len());
            for (_, i) in keyed {
                out.push(std::mem::take(&mut rows[i]));
            }
            Ok(out)
        }
        PhysPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let rows = execute(input)?;
            let end = limit
                .map(|l| (*offset + l).min(rows.len()))
                .unwrap_or(rows.len());
            let start = (*offset).min(rows.len());
            Ok(rows[start..end].to_vec())
        }
        PhysPlan::UnionAll { inputs } => {
            let mut out = Vec::new();
            for i in inputs {
                out.extend(execute(i)?);
            }
            Ok(out)
        }
        PhysPlan::Distinct { input } => {
            let rows = execute(input)?;
            let mut seen: HashSet<Row> = HashSet::with_capacity(rows.len());
            let mut out = Vec::new();
            for row in rows {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok(out)
        }
    }
}

fn hash_join(
    left: &PhysPlan,
    right: &PhysPlan,
    left_keys: &[PhysExpr],
    right_keys: &[PhysExpr],
    kind: JoinKind,
    right_width: usize,
    residual: &Option<PhysExpr>,
) -> Result<Vec<Row>> {
    let left_rows = execute(left)?;
    let right_rows = execute(right)?;

    // Build on the right side, probe with the left (preserves left order,
    // which also gives LEFT JOIN for free).
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(right_rows.len());
    'rows: for (i, row) in right_rows.iter().enumerate() {
        let mut key = Vec::with_capacity(right_keys.len());
        for k in right_keys {
            let v = k.eval(row)?;
            if v.is_null() {
                continue 'rows; // NULL never matches an equi-join key.
            }
            key.push(v);
        }
        table.entry(key).or_default().push(i);
    }

    let mut out = Vec::new();
    let mut key = Vec::with_capacity(left_keys.len());
    for lrow in &left_rows {
        key.clear();
        let mut has_null = false;
        for k in left_keys {
            let v = k.eval(lrow)?;
            if v.is_null() {
                has_null = true;
                break;
            }
            key.push(v);
        }
        let mut matched = false;
        if !has_null {
            if let Some(idxs) = table.get(&key) {
                for &ri in idxs {
                    let mut joined = lrow.clone();
                    joined.extend(right_rows[ri].iter().cloned());
                    if let Some(r) = residual {
                        if r.eval(&joined)?.as_bool()? != Some(true) {
                            continue;
                        }
                    }
                    matched = true;
                    out.push(joined);
                }
            }
        }
        if !matched && kind == JoinKind::Left {
            let mut joined = lrow.clone();
            joined.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(joined);
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn sort_merge_join(
    left: &PhysPlan,
    right: &PhysPlan,
    left_keys: &[PhysExpr],
    right_keys: &[PhysExpr],
    kind: JoinKind,
    right_width: usize,
    residual: &Option<PhysExpr>,
) -> Result<Vec<Row>> {
    let left_rows = execute(left)?;
    let right_rows = execute(right)?;

    // Materialize (key, index) pairs and sort both sides. NULL keys never
    // match and are dropped from the merge (LEFT JOIN keeps their rows).
    let keyed = |rows: &[Row], keys: &[PhysExpr]| -> Result<Vec<(Vec<Value>, usize)>> {
        let mut out = Vec::with_capacity(rows.len());
        'rows: for (i, row) in rows.iter().enumerate() {
            let mut k = Vec::with_capacity(keys.len());
            for e in keys {
                let v = e.eval(row)?;
                if v.is_null() {
                    continue 'rows;
                }
                k.push(v);
            }
            out.push((k, i));
        }
        out.sort_by(|(a, _), (b, _)| cmp_keys(a, b));
        Ok(out)
    };
    let lk = keyed(&left_rows, left_keys)?;
    let rk = keyed(&right_rows, right_keys)?;

    let mut matched_left = vec![false; left_rows.len()];
    let mut out = Vec::new();
    let (mut li, mut ri) = (0usize, 0usize);
    while li < lk.len() && ri < rk.len() {
        match cmp_keys(&lk[li].0, &rk[ri].0) {
            std::cmp::Ordering::Less => li += 1,
            std::cmp::Ordering::Greater => ri += 1,
            std::cmp::Ordering::Equal => {
                // Extent of the equal run on each side.
                let lstart = li;
                while li < lk.len() && cmp_keys(&lk[li].0, &rk[ri].0).is_eq() {
                    li += 1;
                }
                let rstart = ri;
                while ri < rk.len() && cmp_keys(&lk[lstart].0, &rk[ri].0).is_eq() {
                    ri += 1;
                }
                for &(_, l_idx) in &lk[lstart..li] {
                    for &(_, r_idx) in &rk[rstart..ri] {
                        let mut joined = left_rows[l_idx].clone();
                        joined.extend(right_rows[r_idx].iter().cloned());
                        if let Some(r) = residual {
                            if r.eval(&joined)?.as_bool()? != Some(true) {
                                continue;
                            }
                        }
                        matched_left[l_idx] = true;
                        out.push(joined);
                    }
                }
            }
        }
    }
    if kind == JoinKind::Left {
        for (i, row) in left_rows.iter().enumerate() {
            if !matched_left[i] {
                let mut joined = row.clone();
                joined.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(joined);
            }
        }
    }
    Ok(out)
}

fn cmp_keys(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.total_cmp(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

fn nested_loop_join(
    left: &PhysPlan,
    right: &PhysPlan,
    kind: JoinKind,
    right_width: usize,
    predicate: &Option<PhysExpr>,
) -> Result<Vec<Row>> {
    let left_rows = execute(left)?;
    let right_rows = execute(right)?;
    let mut out = Vec::new();
    for lrow in &left_rows {
        let mut matched = false;
        for rrow in &right_rows {
            let mut joined = lrow.clone();
            joined.extend(rrow.iter().cloned());
            let keep = match predicate {
                None => true,
                Some(p) => p.eval(&joined)?.as_bool()? == Some(true),
            };
            if keep {
                matched = true;
                out.push(joined);
            }
        }
        if !matched && kind == JoinKind::Left {
            let mut joined = lrow.clone();
            joined.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(joined);
        }
    }
    Ok(out)
}

/// Running state for one aggregate over one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    SumInt(i64, bool), // (sum, saw_any)
    SumFloat(f64, bool),
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(spec: &AggSpec) -> AggState {
        match spec.func {
            AggregateFunc::Count => AggState::Count(0),
            AggregateFunc::Sum => AggState::SumInt(0, false),
            AggregateFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggregateFunc::Min => AggState::Min(None),
            AggregateFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: Value) -> Result<()> {
        if v.is_null() {
            return Ok(()); // aggregates skip NULLs (COUNT(*) handled outside)
        }
        match self {
            AggState::Count(c) => *c += 1,
            AggState::SumInt(acc, seen) => match v {
                Value::Int(i) => {
                    *acc += i;
                    *seen = true;
                }
                Value::Float(f) => {
                    *self = AggState::SumFloat(*acc as f64 + f, true);
                }
                other => {
                    return Err(EngineError::exec(format!("SUM of non-numeric value {other}")))
                }
            },
            AggState::SumFloat(acc, seen) => {
                let f = v.as_f64()?.expect("null handled");
                *acc += f;
                *seen = true;
            }
            AggState::Avg { sum, count } => {
                *sum += v.as_f64()?.expect("null handled");
                *count += 1;
            }
            AggState::Min(cur) => {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt()) {
                    *cur = Some(v);
                }
            }
            AggState::Max(cur) => {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt()) {
                    *cur = Some(v);
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::SumInt(acc, seen) => {
                if seen {
                    Value::Int(acc)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat(acc, seen) => {
                if seen {
                    Value::Float(acc)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            AggState::Min(v) => v.unwrap_or(Value::Null),
            AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

fn aggregate(input: &PhysPlan, keys: &[PhysExpr], aggs: &[AggSpec]) -> Result<Vec<Row>> {
    let rows = execute(input)?;
    // Group states plus per-group DISTINCT sets for distinct aggregates.
    struct Group {
        states: Vec<AggState>,
        distinct_seen: Vec<Option<HashSet<Value>>>,
    }
    let new_group = || Group {
        states: aggs.iter().map(AggState::new).collect(),
        distinct_seen: aggs
            .iter()
            .map(|a| if a.distinct { Some(HashSet::new()) } else { None })
            .collect(),
    };

    let mut groups: HashMap<Vec<Value>, Group> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new(); // first-seen group order

    for row in &rows {
        let mut key = Vec::with_capacity(keys.len());
        for k in keys {
            key.push(k.eval(row)?);
        }
        let group = match groups.get_mut(&key) {
            Some(g) => g,
            None => {
                order.push(key.clone());
                groups.entry(key.clone()).or_insert_with(new_group)
            }
        };
        for (i, spec) in aggs.iter().enumerate() {
            let v = match &spec.arg {
                None => Value::Int(1), // COUNT(*): every row counts
                Some(a) => a.eval(row)?,
            };
            if v.is_null() {
                continue;
            }
            if let Some(seen) = &mut group.distinct_seen[i] {
                if !seen.insert(v.clone()) {
                    continue;
                }
            }
            group.states[i].update(v)?;
        }
    }

    // Global aggregate over empty input still yields one row of defaults.
    if groups.is_empty() && keys.is_empty() {
        let states: Vec<AggState> = aggs.iter().map(AggState::new).collect();
        let mut row = Vec::with_capacity(aggs.len());
        for s in states {
            row.push(s.finish());
        }
        return Ok(vec![row]);
    }

    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let group = groups.remove(&key).expect("group recorded in order");
        let mut row = key;
        for s in group.states {
            row.push(s.finish());
        }
        out.push(row);
    }
    Ok(out)
}

fn window_rank(
    input: &PhysPlan,
    func: crate::ast::WindowFunc,
    partition: &[PhysExpr],
    order: &[(PhysExpr, bool)],
) -> Result<Vec<Row>> {
    use crate::ast::WindowFunc;
    let rows = execute(input)?;
    // (partition key, order key, original index)
    let mut keyed: Vec<(Vec<Value>, Vec<Value>, usize)> = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let mut pk = Vec::with_capacity(partition.len());
        for p in partition {
            pk.push(p.eval(row)?);
        }
        let mut ok = Vec::with_capacity(order.len());
        for (e, _) in order {
            ok.push(e.eval(row)?);
        }
        keyed.push((pk, ok, i));
    }
    let cmp_order = |oa: &[Value], ob: &[Value]| {
        for (i, (_, desc)) in order.iter().enumerate() {
            let ord = oa[i].total_cmp(&ob[i]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };
    keyed.sort_by(|(pa, oa, ia), (pb, ob, ib)| {
        for (x, y) in pa.iter().zip(pb) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        cmp_order(oa, ob).then(ia.cmp(ib))
    });
    let mut out = vec![Vec::new(); rows.len()];
    let mut row_number = 0i64; // position within partition
    let mut rank = 0i64; // RANK (with gaps)
    let mut dense = 0i64; // DENSE_RANK
    let mut prev_partition: Option<&Vec<Value>> = None;
    let mut prev_order: Option<&Vec<Value>> = None;
    for (pk, ok, i) in &keyed {
        let same_partition = prev_partition == Some(pk);
        if same_partition {
            row_number += 1;
            let tie = prev_order
                .map(|po| cmp_order(po, ok) == std::cmp::Ordering::Equal)
                .unwrap_or(false);
            if !tie {
                rank = row_number;
                dense += 1;
            }
        } else {
            row_number = 1;
            rank = 1;
            dense = 1;
        }
        prev_partition = Some(pk);
        prev_order = Some(ok);
        let value = match func {
            WindowFunc::RowNumber => row_number,
            WindowFunc::Rank => rank,
            WindowFunc::DenseRank => dense,
        };
        let mut row = rows[*i].clone();
        row.push(Value::Int(value));
        out[*i] = row;
    }
    Ok(out)
}
