//! The public database facade.
//!
//! [`Database`] owns the catalog behind a `parking_lot::RwLock`. Queries
//! plan under a read lock and execute on `Arc` row snapshots after the lock
//! is released; DML takes the write lock for its duration.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use crate::ast::{ConflictAction, Expr, InsertSource, Query, Statement};
use crate::catalog::{Catalog, Column, InsertOutcome, ResolvedConflict, Schema, Table};
use crate::error::{EngineError, Result, Span};
use crate::exec::{ExecContext, MemoryBudget, OpStats, WorkerPool};
use crate::expr::{bind_expr, ColLabel, Scope};
use crate::parser::{parse_script_spanned, parse_statement};
use crate::plan::{PlannedQuery, Planner, PlannerConfig, VirtualTables};
use crate::telemetry::{sys, Histogram, QueryStatus, StatementProbe, Telemetry};
use crate::trace::{
    AttrValue, StatementTrace, TraceCtx, TraceSampling, TraceScope, WaitClass, WaitTotals,
    ROOT_SPAN,
};
use crate::value::{DataType, Row, Value};
use crate::verify::{ParamDiscipline, SnapshotGuarantee, VerifyReport, VerifyRule};
use crate::wal::{self, push_insert, StorageIo, SyncPolicy, Wal, WalOp};

/// Engine configuration. The three profiles used by the benchmark harness to
/// emulate distinct DBMS behaviours are built from these knobs (see
/// [`EngineConfig::profile_a`] etc.).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Algorithm for detected equi-joins.
    pub join_algo: crate::plan::JoinAlgo,
    /// Materialize CTEs once instead of inlining their plans.
    pub materialize_ctes: bool,
    /// Number of executor worker threads. `1` (the default, and what every
    /// benchmark profile uses) runs the exact serial interpreter path;
    /// `>= 2` enables the morsel-parallel operators backed by a persistent
    /// worker pool owned by the [`Database`].
    pub parallelism: usize,
    /// Match equality / `IN`-list predicates and join keys against table
    /// indexes, planning `IndexScan` / index-nested-loop joins instead of
    /// full scans. Disable to force full-scan plans.
    pub use_indexes: bool,
    /// Cache physical plans keyed by SQL text + catalog version, so repeated
    /// serving calls skip parse + plan. Parameterized statements are cached
    /// as *templates*: `?` markers stay symbolic in the plan and each
    /// execution binds its parameter values into a fresh copy of the tree.
    pub plan_cache: bool,
    /// Abort statements whose execution exceeds this wall-clock budget with
    /// [`EngineError::Timeout`]. Checked at operator and morsel boundaries,
    /// so a pathological plan (e.g. an unconstrained cross join) cannot run
    /// unbounded. `None` (the default) disables the check.
    pub statement_timeout: Option<Duration>,
    /// Fsync policy for the write-ahead log of durable databases (ignored
    /// by purely in-memory databases).
    pub wal_sync: SyncPolicy,
    /// Group commit: under [`SyncPolicy::Always`], coalesce the WAL appends
    /// of overlapping writers into a single fsync. Each statement enqueues
    /// its frame while holding the catalog lock and blocks for durability
    /// after releasing it, so concurrent commits share one fsync while the
    /// acknowledgement guarantee is unchanged (a statement returns only
    /// after its frame is on disk). No effect under other sync policies.
    pub wal_group_commit: bool,
    /// Fold the log into a checkpoint once it exceeds this many bytes
    /// (0 disables the automatic trigger; [`Database::checkpoint`] still
    /// works). Ignored by purely in-memory databases.
    pub checkpoint_after_bytes: u64,
    /// Collect runtime telemetry (statement phase timings, the
    /// `sys.query_log` ring, WAL and serving metrics). Disabling turns every
    /// recording site into a cheap branch; the `sys.*` tables stay queryable
    /// but report empty/zero data.
    pub telemetry: bool,
    /// Statements whose total duration reaches this threshold are flagged
    /// `slow = 1` in `sys.query_log`.
    pub slow_query_threshold: Duration,
    /// Number of statements retained by the `sys.query_log` ring buffer.
    pub query_log_capacity: usize,
    /// Attach columnar chunk caches to base-table scans so eligible
    /// Filter/Project/Aggregate chains run on the vectorized kernels.
    /// Disable to force the row-at-a-time path everywhere — the executor
    /// produces identical results either way, which is what the
    /// differential test suites assert.
    pub vectorized: bool,
    /// Run the post-planning static plan verifier (see [`crate::verify`]) on
    /// every plan — freshly planned or served from the cache — and fail the
    /// statement with a spanned [`EngineError::Verify`] when any of the five
    /// invariant classes is violated. Defaults to on in debug builds (tests,
    /// CI) and off in release builds, keeping the serving hot path free of
    /// the walk; `EXPLAIN (VERIFY)` runs the verifier on demand regardless.
    pub verify_plans: bool,
    /// Per-statement memory budget in bytes for pipeline-breaking operator
    /// state (hash-join builds, aggregate hash tables, sort runs,
    /// `DISTINCT`/`UNION` dedup sets, materialized `UNION ALL` output). A
    /// statement that exceeds the budget aborts with the retryable
    /// [`EngineError::ResourceExhausted`] instead of driving the process
    /// toward OOM. `None` (the default) disables enforcement; peak usage is
    /// still tracked and surfaced in `sys.query_log`.
    pub memory_budget: Option<u64>,
    /// Maximum statements executing concurrently. When set, every statement
    /// entry point passes an admission gate: beyond this many running
    /// statements, up to [`EngineConfig::admission_queue_depth`] statements
    /// wait for a slot and the rest are shed immediately with the retryable
    /// [`EngineError::Overloaded`]. `None` (the default) disables admission
    /// control entirely.
    pub max_concurrent_statements: Option<usize>,
    /// Bounded wait-queue depth for the admission gate (only meaningful with
    /// [`EngineConfig::max_concurrent_statements`]). A queued statement whose
    /// `statement_timeout` deadline expires before a slot frees is shed.
    pub admission_queue_depth: usize,
    /// Retry policy for transient WAL storage failures (see
    /// [`crate::wal::WalRetry`]). The default retries nothing: a failed
    /// append wedges the WAL into degraded read-only mode exactly as before.
    pub wal_retry: crate::wal::WalRetry,
    /// Per-statement hierarchical trace capture (see [`TraceSampling`] and
    /// [`crate::trace`]). `Off` (the default) adds zero clock reads to any
    /// statement path; `On` tentatively records every statement's span tree
    /// and keeps errors and slow statements always, the rest under a
    /// deterministic seeded sampler. Kept traces are queryable through
    /// `sys.trace_spans`. Requires [`EngineConfig::telemetry`].
    pub trace_sampling: TraceSampling,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            join_algo: crate::plan::JoinAlgo::Hash,
            materialize_ctes: false,
            parallelism: 1,
            use_indexes: true,
            plan_cache: true,
            statement_timeout: None,
            wal_sync: SyncPolicy::OnCommit,
            wal_group_commit: false,
            checkpoint_after_bytes: 4 << 20,
            telemetry: true,
            slow_query_threshold: Duration::from_millis(100),
            query_log_capacity: 256,
            vectorized: true,
            verify_plans: cfg!(debug_assertions),
            memory_budget: None,
            max_concurrent_statements: None,
            admission_queue_depth: 16,
            wal_retry: crate::wal::WalRetry::default(),
            trace_sampling: TraceSampling::default(),
        }
    }
}

impl EngineConfig {
    /// Profile A — hash joins, pipelined CTEs (PostgreSQL-like behaviour).
    pub fn profile_a() -> Self {
        EngineConfig {
            join_algo: crate::plan::JoinAlgo::Hash,
            materialize_ctes: false,
            ..EngineConfig::default()
        }
    }

    /// Profile B — hash joins, materialized CTEs (MySQL-like behaviour).
    pub fn profile_b() -> Self {
        EngineConfig {
            join_algo: crate::plan::JoinAlgo::Hash,
            materialize_ctes: true,
            ..EngineConfig::default()
        }
    }

    /// Profile C — sort-merge joins, pipelined CTEs (an engine without hash
    /// joins; SQLite's B-tree-driven plans behave like this on these
    /// shapes).
    pub fn profile_c() -> Self {
        EngineConfig {
            join_algo: crate::plan::JoinAlgo::SortMerge,
            materialize_ctes: false,
            ..EngineConfig::default()
        }
    }

    /// Builder-style override of the executor parallelism (clamped to ≥ 1).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Builder-style toggle of index-aware planning.
    pub fn with_index_scans(mut self, on: bool) -> Self {
        self.use_indexes = on;
        self
    }

    /// Builder-style toggle of the physical-plan cache.
    pub fn with_plan_cache(mut self, on: bool) -> Self {
        self.plan_cache = on;
        self
    }

    /// Builder-style statement timeout.
    pub fn with_statement_timeout(mut self, limit: Duration) -> Self {
        self.statement_timeout = Some(limit);
        self
    }

    /// Builder-style WAL fsync policy.
    pub fn with_wal_sync(mut self, sync: SyncPolicy) -> Self {
        self.wal_sync = sync;
        self
    }

    /// Builder-style toggle of WAL group commit (see
    /// [`EngineConfig::wal_group_commit`]).
    pub fn with_wal_group_commit(mut self, on: bool) -> Self {
        self.wal_group_commit = on;
        self
    }

    /// Builder-style automatic-checkpoint threshold (bytes of WAL).
    pub fn with_checkpoint_after_bytes(mut self, bytes: u64) -> Self {
        self.checkpoint_after_bytes = bytes;
        self
    }

    /// Builder-style toggle of telemetry collection.
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Builder-style slow-query threshold for `sys.query_log`.
    pub fn with_slow_query_threshold(mut self, threshold: Duration) -> Self {
        self.slow_query_threshold = threshold;
        self
    }

    /// Builder-style `sys.query_log` ring capacity (clamped to ≥ 1).
    pub fn with_query_log_capacity(mut self, capacity: usize) -> Self {
        self.query_log_capacity = capacity.max(1);
        self
    }

    /// Builder-style toggle of columnar/vectorized execution.
    pub fn with_vectorized(mut self, on: bool) -> Self {
        self.vectorized = on;
        self
    }

    /// Builder-style toggle of the static plan verifier (see
    /// [`EngineConfig::verify_plans`]).
    pub fn with_verify_plans(mut self, on: bool) -> Self {
        self.verify_plans = on;
        self
    }

    /// Builder-style per-statement memory budget in bytes (see
    /// [`EngineConfig::memory_budget`]).
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Builder-style admission-control concurrency cap (clamped to ≥ 1; see
    /// [`EngineConfig::max_concurrent_statements`]).
    pub fn with_max_concurrent_statements(mut self, max: usize) -> Self {
        self.max_concurrent_statements = Some(max.max(1));
        self
    }

    /// Builder-style admission wait-queue depth (see
    /// [`EngineConfig::admission_queue_depth`]).
    pub fn with_admission_queue_depth(mut self, depth: usize) -> Self {
        self.admission_queue_depth = depth;
        self
    }

    /// Builder-style WAL transient-failure retry policy (see
    /// [`EngineConfig::wal_retry`]).
    pub fn with_wal_retry(mut self, retry: crate::wal::WalRetry) -> Self {
        self.wal_retry = retry;
        self
    }

    /// Builder-style trace sampling policy (see
    /// [`EngineConfig::trace_sampling`]).
    pub fn with_trace_sampling(mut self, sampling: TraceSampling) -> Self {
        self.trace_sampling = sampling;
        self
    }

    fn planner(&self) -> PlannerConfig {
        PlannerConfig {
            join_algo: self.join_algo,
            materialize_ctes: self.materialize_ctes,
            use_indexes: self.use_indexes,
            vectorized: self.vectorized,
        }
    }
}

/// The result of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Position of an output column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// First value of the first row, if any.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    Rows(QueryResult),
    /// Number of rows inserted / updated / deleted (DDL reports 0).
    Affected(usize),
}

impl StatementResult {
    pub fn into_rows(self) -> Result<QueryResult> {
        match self {
            StatementResult::Rows(r) => Ok(r),
            StatementResult::Affected(_) => Err(EngineError::exec("statement did not return rows")),
        }
    }

    pub fn affected(&self) -> usize {
        match self {
            StatementResult::Rows(r) => r.rows.len(),
            StatementResult::Affected(n) => *n,
        }
    }
}

/// Upper bound on cached plans. Serving workloads cycle through a handful of
/// statement texts; the bound only guards against unbounded ad-hoc traffic.
const PLAN_CACHE_CAPACITY: usize = 128;

/// Normalize a statement's text into its plan-cache key: runs of whitespace
/// collapse to one space and keywords lowercase, while identifiers and
/// string literals keep their exact spelling (identifier case shows up in
/// output column names, so it is significant). Differently formatted copies
/// of the same statement thus share one cached plan template.
fn normalize_cache_key(sql: &str) -> String {
    let bytes = sql.as_bytes();
    let mut out = String::with_capacity(sql.len());
    let mut pending_space = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            pending_space = !out.is_empty();
            i += 1;
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        if b == b'\'' {
            // String literal: copied verbatim through the closing quote,
            // with '' staying an escaped quote.
            let start = i;
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\'' {
                    if bytes.get(i + 1) == Some(&b'\'') {
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                i += 1;
            }
            out.push_str(&sql[start..i]);
        } else if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &sql[start..i];
            if crate::lexer::is_keyword(word) {
                for c in word.chars() {
                    out.push(c.to_ascii_lowercase());
                }
            } else {
                out.push_str(word);
            }
        } else {
            let len = sql[i..].chars().next().map_or(1, char::len_utf8);
            out.push_str(&sql[i..i + len]);
            i += len;
        }
    }
    out
}

/// A cached physical plan tagged with the catalog version it was planned
/// against; served only while the version still matches.
struct CachedPlan {
    version: u64,
    planned: Arc<PlannedQuery>,
    /// The plan is a *template*: `?` markers were kept symbolic
    /// ([`crate::expr::PhysExpr::Param`] nodes) and must be bound with
    /// [`crate::plan::bind_plan_params`] before execution.
    has_params: bool,
    /// Catalog version at the last *successful* verifier walk of this entry
    /// ([`UNVERIFIED`] when none). The plan tree behind the `Arc` is
    /// immutable and verification is deterministic in (plan, catalog
    /// version), so a hit at the same version can skip the walk — this is
    /// what keeps the verifier's cost off the cached serving hot path.
    /// Shared (not copied) with in-flight executions so a successful walk
    /// marks the entry itself.
    verified_version: Arc<AtomicU64>,
}

/// Sentinel for [`CachedPlan::verified_version`]: the entry has not passed a
/// verifier walk (never verified, or deliberately reset by the corruption
/// test seam).
const UNVERIFIED: u64 = u64::MAX;

/// An embedded, in-memory relational database.
pub struct Database {
    catalog: RwLock<Catalog>,
    config: EngineConfig,
    /// Executor worker pool, spawned once when `config.parallelism >= 2` so
    /// individual queries never pay thread-spawn latency.
    pool: Option<Arc<WorkerPool>>,
    /// Snapshot of the catalog taken at `BEGIN`, restored on `ROLLBACK`.
    txn_backup: parking_lot::Mutex<Option<Catalog>>,
    /// Monotonic version bumped *before* any catalog write (DDL, DML, and
    /// `ROLLBACK` restores). Cached plans embed row/index snapshots, so any
    /// change to data or schema must invalidate them; the counter never goes
    /// backwards, which keeps a rolled-back catalog from aliasing a future
    /// version number.
    catalog_version: AtomicU64,
    /// Physical plans of parameterless queries, keyed by SQL text.
    plan_cache: Mutex<HashMap<String, CachedPlan>>,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    plan_cache_evictions: AtomicU64,
    /// Write-ahead log of committed logical changes; `None` for purely
    /// in-memory databases (`Database::new`).
    wal: Option<Wal>,
    /// Engine-wide observability registry, shared (`Arc`) with the WAL and
    /// with BornSQL model handles; queryable through the `sys.*` tables.
    telemetry: Arc<Telemetry>,
    /// Bounded statement admission gate; `None` unless
    /// [`EngineConfig::max_concurrent_statements`] is set.
    admission: Option<Arc<crate::admission::AdmissionGate>>,
}

/// Per-statement execution state: the wall-clock deadline (derived from
/// `statement_timeout` when the statement entered the engine, so time spent
/// queued for admission counts against it), the memory budget shared with
/// every operator the statement runs, and the admission permit held for the
/// statement's whole lifetime.
struct StatementCtx {
    deadline: Option<Instant>,
    budget: Arc<MemoryBudget>,
    /// Tentative span recorder; `Some` only when the engine's
    /// [`TraceSampling`] is on (and telemetry enabled). The keep/drop
    /// decision happens in `finish_statement`.
    trace: Option<TraceCtx>,
    _permit: Option<crate::admission::AdmissionPermit>,
}

impl StatementCtx {
    /// Scope under which WAL spans (fsync wait, retries) recorded while this
    /// statement executes are parented: the pre-reserved exec span.
    fn wal_scope(&self) -> Option<TraceScope<'_>> {
        self.trace.as_ref().map(|ctx| TraceScope {
            ctx,
            parent: crate::trace::EXEC_SPAN,
        })
    }

    /// Record one top-level phase span (`parse` / `sema` / `plan`) that
    /// started at `from` and ends now. No-op when untraced.
    fn record_phase(&self, name: &'static str, from: Option<Instant>) {
        if let (Some(trace), Some(from)) = (&self.trace, from) {
            trace.record_since(ROOT_SPAN, name, from, None, Vec::new());
        }
    }

    /// Record the exec span covering `from`..now (no-op when untraced or
    /// when an inner executor path already recorded it).
    fn record_exec(&self, from: Option<Instant>) {
        if let (Some(trace), Some(from)) = (&self.trace, from) {
            trace.record_exec(from, Vec::new());
        }
    }

    /// Record the plan-phase span for a freshly planned (cache-missed)
    /// query, annotated with its operator count.
    fn record_plan_span(&self, from: Option<Instant>, plan: &crate::plan::PhysPlan) {
        if let (Some(trace), Some(from)) = (&self.trace, from) {
            trace.record_since(
                ROOT_SPAN,
                "plan",
                from,
                None,
                vec![
                    ("cache", AttrValue::Text("miss")),
                    ("nodes", AttrValue::Int(plan.node_count() as i64)),
                ],
            );
        }
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    pub fn with_config(config: EngineConfig) -> Self {
        let telemetry = Arc::new(Telemetry::new(
            config.telemetry,
            config.slow_query_threshold,
            config.query_log_capacity,
        ));
        let admission = config.max_concurrent_statements.map(|max| {
            Arc::new(crate::admission::AdmissionGate::new(
                max,
                config.admission_queue_depth,
                Arc::clone(&telemetry),
            ))
        });
        Database {
            catalog: RwLock::new(Catalog::new()),
            pool: (config.parallelism > 1).then(|| Arc::new(WorkerPool::new(config.parallelism))),
            config,
            txn_backup: parking_lot::Mutex::new(None),
            catalog_version: AtomicU64::new(0),
            plan_cache: Mutex::new(HashMap::new()),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            plan_cache_evictions: AtomicU64::new(0),
            wal: None,
            telemetry,
            admission,
        }
    }

    /// Open a durable database rooted at `dir`: load the latest checkpoint,
    /// replay the write-ahead log (truncating any torn tail), and attach a
    /// WAL so every committed change is persisted. The directory is created
    /// if it does not exist.
    pub fn open(dir: impl AsRef<std::path::Path>, config: EngineConfig) -> Result<Database> {
        Self::open_with_io(Arc::new(wal::FileIo::new(dir)?), config)
    }

    /// [`Database::open`] with the default configuration.
    pub fn persistent(dir: impl AsRef<std::path::Path>) -> Result<Database> {
        Self::open(dir, EngineConfig::default())
    }

    /// Open a durable database over an injectable storage backend. This is
    /// how the fault-injection tests drive the WAL against in-memory and
    /// failpoint-instrumented storage; applications normally use
    /// [`Database::open`].
    pub fn open_with_io(io: Arc<dyn StorageIo>, config: EngineConfig) -> Result<Database> {
        let recovered = wal::recover(io.as_ref())?;
        let mut db = Database::with_config(config);
        let wal = Wal::new(
            io,
            config.wal_sync,
            config.wal_group_commit,
            config.checkpoint_after_bytes,
            config.wal_retry,
            recovered.next_seq,
            recovered.wal_len,
            Arc::clone(&db.telemetry),
        );
        db.catalog = RwLock::new(recovered.catalog);
        db.wal = Some(wal);
        Ok(db)
    }

    /// Fold the current state into a checkpoint and truncate the WAL.
    /// Errors on in-memory databases and inside explicit transactions.
    pub fn checkpoint(&self) -> Result<()> {
        let Some(wal) = &self.wal else {
            return Err(EngineError::wal(
                "checkpoint requires a durable database (Database::open)",
            ));
        };
        if self.in_transaction() {
            return Err(EngineError::exec("cannot checkpoint inside a transaction"));
        }
        let catalog = self.catalog.write();
        wal.checkpoint(&catalog)
    }

    /// Bytes currently in the write-ahead log; `None` for in-memory
    /// databases. Exposed for checkpoint-trigger tests and benches.
    pub fn wal_bytes(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.wal_bytes())
    }

    /// Log one statement's ops to the WAL (no-op for in-memory databases).
    /// Must be called while still holding the catalog write lock so WAL
    /// order equals catalog mutation order. Under group commit the returned
    /// ticket must be passed to [`Database::wal_wait`] *after* the lock
    /// drops; the statement is durable only once that returns.
    fn wal_log(
        &self,
        catalog: &Catalog,
        ops: Vec<WalOp>,
        deadline: Option<Instant>,
        trace: Option<TraceScope<'_>>,
    ) -> Result<Option<u64>> {
        match &self.wal {
            Some(wal) => wal.log_traced(catalog, ops, deadline, trace.as_ref()),
            None => Ok(None),
        }
    }

    /// Block until a group-commit ticket is durable (no-op for `None`
    /// tickets, i.e. non-group writes). Callers must have released the
    /// catalog lock — overlapping writers blocking here concurrently is
    /// exactly what lets the flush leader coalesce their fsyncs. Also runs
    /// the automatic checkpoint trigger, which the group path defers until
    /// the catalog lock is available again.
    fn wal_wait(
        &self,
        ticket: Option<u64>,
        deadline: Option<Instant>,
        trace: Option<TraceScope<'_>>,
    ) -> Result<()> {
        let (Some(wal), Some(seq)) = (&self.wal, ticket) else {
            return Ok(());
        };
        wal.wait_durable_traced(seq, deadline, trace.as_ref())?;
        if wal.wants_checkpoint() && !self.in_transaction() {
            // Plain `write()` (no version bump): the catalog is not mutated.
            let catalog = self.catalog.write();
            wal.checkpoint(&catalog)?;
        }
        Ok(())
    }

    /// Take the catalog write lock, bumping the catalog version first so any
    /// plan cached from here on is tagged with a version that postdates the
    /// upcoming mutation (see `plan_and_cache` for the ordering argument).
    fn write_catalog(&self) -> Result<parking_lot::RwLockWriteGuard<'_, Catalog>> {
        // Degraded read-only mode is enforced here, before any mutation:
        // every write statement funnels through this lock, so a wedged WAL
        // refuses the statement while the in-memory state is still intact.
        if let Some(wal) = &self.wal {
            wal.check_writable()?;
        }
        self.catalog_version.fetch_add(1, Ordering::Release);
        Ok(self.catalog.write())
    }

    /// Current catalog version (bumped by every DDL/DML write).
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version.load(Ordering::Acquire)
    }

    /// Plan-cache counters as `(hits, misses)` since the last
    /// [`Database::reset_plan_cache_stats`] (process lifetime otherwise).
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        (
            self.plan_cache_hits.load(Ordering::Relaxed),
            self.plan_cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Plan-cache counters as `(hits, misses, evictions)`. Evictions count
    /// entries dropped by the capacity bound ([`PLAN_CACHE_CAPACITY`]) —
    /// both stale-entry reaping and full clears.
    pub fn plan_cache_metrics(&self) -> (u64, u64, u64) {
        (
            self.plan_cache_hits.load(Ordering::Relaxed),
            self.plan_cache_misses.load(Ordering::Relaxed),
            self.plan_cache_evictions.load(Ordering::Relaxed),
        )
    }

    /// Zero the plan-cache hit/miss/eviction counters (cached plans stay).
    /// Lets tests and monitoring windows measure deltas instead of
    /// process-lifetime totals.
    pub fn reset_plan_cache_stats(&self) {
        self.plan_cache_hits.store(0, Ordering::Relaxed);
        self.plan_cache_misses.store(0, Ordering::Relaxed);
        self.plan_cache_evictions.store(0, Ordering::Relaxed);
    }

    /// The engine's telemetry registry (shared with the WAL and BornSQL
    /// model handles).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Look `sql` up in the plan cache (under its normalized key); a hit
    /// requires the entry's catalog version to match the current one.
    /// Returns the plan, whether it is a parameter template (see
    /// [`CachedPlan::has_params`]), the entry's catalog version (used by
    /// the verifier to decide whether snapshot-identity checks may run),
    /// and the entry's verification marker.
    fn cached_plan(&self, sql: &str) -> Option<(Arc<PlannedQuery>, bool, u64, Arc<AtomicU64>)> {
        let version = self.catalog_version.load(Ordering::Acquire);
        let key = normalize_cache_key(sql);
        let cache = self.plan_cache.lock();
        match cache.get(&key) {
            Some(c) if c.version == version => {
                self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
                Some((
                    Arc::clone(&c.planned),
                    c.has_params,
                    c.version,
                    Arc::clone(&c.verified_version),
                ))
            }
            _ => {
                self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Plan a query and store it in the plan cache. With `symbolic` set the
    /// query contains `?` markers and is planned as a reusable template
    /// (parameters stay [`crate::expr::PhysExpr::Param`] nodes).
    ///
    /// The version is read *before* planning and writers bump it *before*
    /// taking the write lock, so a plan that raced a writer is tagged with
    /// the pre-write version and can never be served against the post-write
    /// catalog — the stale-side error is always a harmless replan.
    fn plan_and_cache(
        &self,
        sql: &str,
        query: &Query,
        symbolic: bool,
    ) -> Result<Arc<PlannedQuery>> {
        let version = self.catalog_version.load(Ordering::Acquire);
        // Fold constant expressions once here so the cached plan — the
        // serving hot path — embeds pre-evaluated literals.
        let mut query = query.clone();
        crate::sema::fold::fold_query(&mut query);
        let (planned, used_virtual) = {
            let catalog = self.catalog.read();
            let mut planner =
                Planner::new(&catalog, &[], self.config.planner()).with_virtuals(self);
            if symbolic {
                planner = planner.symbolic();
            }
            let planned = Arc::new(planner.plan_query(&query)?);
            let used_virtual = planner.used_virtual();
            // Verify under the same read lock planning ran under, so the
            // snapshot-identity checks compare against the exact catalog
            // state the plan captured.
            if self.config.verify_plans {
                let discipline = if symbolic {
                    ParamDiscipline::Template
                } else {
                    ParamDiscipline::Bound
                };
                let report = crate::verify::verify_planned(
                    &planned,
                    Some(&catalog),
                    SnapshotGuarantee::Current,
                    discipline,
                );
                self.verify_outcome(report, discipline, sql)?;
            }
            (planned, used_virtual)
        };
        if used_virtual {
            // Plans over `sys.*` embed point-in-time telemetry rows; serving
            // one from the cache would freeze the metrics. (Entry points
            // already skip the cache textually; this is the backstop.)
            return Ok(planned);
        }
        let key = normalize_cache_key(sql);
        let mut cache = self.plan_cache.lock();
        if cache.len() >= PLAN_CACHE_CAPACITY && !cache.contains_key(&key) {
            // Evict stale entries first; fall back to dropping everything
            // (plans embed table snapshots, so a full clear also releases
            // pinned row memory).
            let before = cache.len();
            cache.retain(|_, c| c.version == version);
            if cache.len() >= PLAN_CACHE_CAPACITY {
                cache.clear();
            }
            self.plan_cache_evictions
                .fetch_add((before - cache.len()) as u64, Ordering::Relaxed);
        }
        cache.insert(
            key,
            CachedPlan {
                version,
                planned: Arc::clone(&planned),
                has_params: symbolic,
                // When the verifier is on, the plan already passed a walk at
                // `version` above (a violation returned early), so the first
                // cache hit can skip straight to execution.
                verified_version: Arc::new(AtomicU64::new(if self.config.verify_plans {
                    version
                } else {
                    UNVERIFIED
                })),
            },
        );
        Ok(planned)
    }

    /// Record a verifier run in telemetry and convert its violations into a
    /// spanned [`EngineError::Verify`] covering the statement text.
    ///
    /// Template-discipline `param-slots` findings (a `?` slot gap, e.g.
    /// `SELECT ?3` never consuming slots 1–2) are surfaced through the
    /// `verify.violations` counter and `EXPLAIN (VERIFY)` but do not abort
    /// the statement: under-binding is reported at bind time as the clearer
    /// [`EngineError::Parameter`], and over-binding keeps its historical
    /// permissiveness.
    fn verify_outcome(
        &self,
        mut report: VerifyReport,
        discipline: ParamDiscipline,
        sql: &str,
    ) -> Result<()> {
        self.record_verify(&report);
        if discipline == ParamDiscipline::Template {
            report
                .violations
                .retain(|v| v.rule != VerifyRule::ParamSlots);
        }
        report.into_result(Span::new(0, sql.len()))
    }

    fn record_verify(&self, report: &VerifyReport) {
        if self.telemetry.enabled() {
            self.telemetry.verify_plans_checked.incr();
            self.telemetry
                .verify_violations
                .add(report.violations.len() as u64);
        }
    }

    /// Verify a plan served from the cache. Templates are checked under
    /// [`ParamDiscipline::Template`]; the snapshot-identity checks only run
    /// while the live catalog version still equals the entry's under the
    /// read lock — a writer that advanced the catalog after the lookup
    /// makes the entry stale-but-harmless (the next lookup replans), not a
    /// violation.
    ///
    /// The walk is memoized per catalog version through `verified`: the
    /// cached tree is immutable and the verdict is deterministic in (plan,
    /// catalog version), so only the first hit after a plan insert, a
    /// catalog change, or a marker reset pays for the walk. A failed walk
    /// never updates the marker — a corrupt entry is re-rejected on every
    /// execution until it is evicted or replaced.
    fn verify_cached(
        &self,
        planned: &PlannedQuery,
        has_params: bool,
        version: u64,
        verified: &AtomicU64,
        sql: &str,
    ) -> Result<()> {
        if !self.config.verify_plans {
            return Ok(());
        }
        let discipline = if has_params {
            ParamDiscipline::Template
        } else {
            ParamDiscipline::Bound
        };
        let (report, current) = {
            let catalog = self.catalog.read();
            let current = self.catalog_version.load(Ordering::Acquire);
            if verified.load(Ordering::Acquire) == current {
                return Ok(());
            }
            let report = if current == version {
                crate::verify::verify_planned(
                    planned,
                    Some(&catalog),
                    SnapshotGuarantee::Current,
                    discipline,
                )
            } else {
                crate::verify::verify_planned(planned, None, SnapshotGuarantee::MayLag, discipline)
            };
            (report, current)
        };
        self.verify_outcome(report, discipline, sql)?;
        verified.store(current, Ordering::Release);
        Ok(())
    }

    /// Test seam: replace the cached plan for `sql` (if any) with a mutated
    /// copy, returning whether an entry was found. The plan-corruption
    /// harness uses this to prove each verifier invariant class fires; it
    /// has no other callers.
    #[doc(hidden)]
    pub fn mutate_cached_plan(
        &self,
        sql: &str,
        mutate: &mut dyn FnMut(&mut crate::plan::PhysPlan),
    ) -> bool {
        let key = normalize_cache_key(sql);
        let mut cache = self.plan_cache.lock();
        match cache.get_mut(&key) {
            Some(entry) => {
                let mut planned = (*entry.planned).clone();
                mutate(&mut planned.plan);
                entry.planned = Arc::new(planned);
                // A fresh marker (not a reset of the shared one): in-flight
                // executions still verifying the old tree must not be able
                // to mark the replaced entry as checked.
                entry.verified_version = Arc::new(AtomicU64::new(UNVERIFIED));
                true
            }
            None => false,
        }
    }

    /// Execute a cached (or just-cached) planned query.
    fn execute_planned(
        &self,
        planned: &PlannedQuery,
        ctx: &StatementCtx,
    ) -> Result<StatementResult> {
        self.record_plan_modes(&planned.plan);
        let rows = self.run_plan(&planned.plan, ctx)?;
        Ok(StatementResult::Rows(QueryResult {
            columns: planned.columns.clone(),
            rows,
        }))
    }

    /// Execute a plan served from the cache: templates bind their parameter
    /// values into a fresh plan tree first, parameterless plans run as-is.
    fn execute_cached(
        &self,
        planned: &PlannedQuery,
        has_params: bool,
        params: &[Value],
        ctx: &StatementCtx,
    ) -> Result<StatementResult> {
        if !has_params {
            return self.execute_planned(planned, ctx);
        }
        let plan = crate::plan::bind_plan_params(&planned.plan, params)?;
        self.record_plan_modes(&plan);
        let rows = self.run_plan(&plan, ctx)?;
        Ok(StatementResult::Rows(QueryResult {
            columns: planned.columns.clone(),
            rows,
        }))
    }

    /// Run a plan to rows. Untraced statements take the plain executor path
    /// unchanged; traced statements run with stats collection and record the
    /// exec span plus the per-operator subtree (the same `OpStats` tree
    /// `EXPLAIN ANALYZE` renders, so the two agree by construction).
    fn run_plan(&self, plan: &crate::plan::PhysPlan, ctx: &StatementCtx) -> Result<Vec<Row>> {
        let Some(trace) = &ctx.trace else {
            return self.exec_ctx(ctx).execute(plan);
        };
        let from = Instant::now();
        let result = self.exec_ctx(ctx).execute_with_stats(plan);
        let exec_start = trace.offset_us(from);
        trace.record_exec(from, Vec::new());
        match result {
            Ok((rows, stats)) => {
                trace.record_op_tree(&stats, exec_start);
                Ok(rows)
            }
            Err(e) => Err(e),
        }
    }

    /// Count how many mode-capable operators of an executed plan take the
    /// vectorized vs the row path (surfaced as `exec.vectorized_ops` /
    /// `exec.row_ops` in `sys.metrics`).
    fn record_plan_modes(&self, plan: &crate::plan::PhysPlan) {
        if !self.telemetry.enabled() {
            return;
        }
        let (vectorized, row) = crate::exec::count_modes(plan);
        self.telemetry.vectorized_ops.add(vectorized);
        self.telemetry.row_ops.add(row);
    }

    /// Begin one statement: derive its deadline from `statement_timeout`,
    /// pass the admission gate (which may queue or shed), and allocate its
    /// memory budget. The returned context is threaded through the whole
    /// execution path; dropping it (at the end of the statement, or during a
    /// panic unwind) releases the admission slot.
    fn begin_statement(&self) -> Result<StatementCtx> {
        let deadline = self
            .config
            .statement_timeout
            .map(|limit| Instant::now() + limit);
        // The trace origin predates admission so queue wait lands inside the
        // statement's span tree.
        let trace =
            (self.telemetry.enabled() && self.config.trace_sampling.is_on()).then(TraceCtx::new);
        let permit = match &self.admission {
            Some(gate) => Some(gate.admit(deadline)?),
            None => None,
        };
        if let (Some(trace), Some(waited)) = (&trace, permit.as_ref().and_then(|p| p.queue_wait()))
        {
            let now = Instant::now();
            let from = now.checked_sub(waited).unwrap_or(now);
            trace.record_since(
                ROOT_SPAN,
                "admission.queue_wait",
                from,
                Some(WaitClass::Admission),
                Vec::new(),
            );
        }
        let budget = Arc::new(match self.config.memory_budget {
            Some(limit) => MemoryBudget::limited(limit),
            None => MemoryBudget::unlimited(),
        });
        Ok(StatementCtx {
            deadline,
            budget,
            trace,
            _permit: permit,
        })
    }

    /// The execution context queries run under: the configured parallelism
    /// plus the shared worker pool, carrying the statement's deadline and
    /// memory budget.
    fn exec_ctx(&self, stmt: &StatementCtx) -> ExecContext {
        let ctx = match &self.pool {
            // Telemetry on the context feeds the `worker_idle` wait-class
            // rollup (coordinator time blocked on the pool); recorded only
            // on the parallel dispatch path, so serial execution stays
            // clock-free.
            Some(pool) if self.telemetry.enabled() => {
                ExecContext::with_pool(self.config.parallelism, Arc::clone(pool))
                    .with_telemetry(Arc::clone(&self.telemetry))
            }
            Some(pool) => ExecContext::with_pool(self.config.parallelism, Arc::clone(pool)),
            None => ExecContext::serial(),
        };
        let ctx = ctx.with_budget(Arc::clone(&stmt.budget));
        match stmt.deadline {
            Some(deadline) => ctx.with_deadline(deadline),
            None => ctx,
        }
    }

    /// Whether a transaction started with `BEGIN` is open.
    pub fn in_transaction(&self) -> bool {
        self.txn_backup.lock().is_some()
    }

    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Execute one statement without parameters.
    pub fn execute(&self, sql: &str) -> Result<StatementResult> {
        self.execute_with(sql, &[])
    }

    /// Execute one statement with positional parameters (`?`, `?1`).
    ///
    /// Queries go through the plan cache (when enabled): a hit skips parsing
    /// and planning entirely. Parameterized queries are cached as plan
    /// *templates* — `?` markers stay symbolic in the cached tree and each
    /// execution substitutes its values into a fresh copy — except where a
    /// parameter's value is consumed at plan time (`LIMIT ?`, parameters
    /// inside subquery bodies, or any parameter under materialized CTEs),
    /// which plan inline and stay uncached.
    pub fn execute_with(&self, sql: &str, params: &[Value]) -> Result<StatementResult> {
        let mut probe = StatementProbe::start(self.telemetry.enabled());
        let (result, peak_mem, trace) = match self.begin_statement() {
            Ok(mut ctx) => {
                let r = self.execute_probed(sql, params, &mut probe, &ctx);
                (r, ctx.budget.peak_bytes(), ctx.trace.take())
            }
            Err(e) => (Err(e), 0, None),
        };
        let result = result.map_err(|e| e.with_statement_span(sql));
        self.finish_statement(&probe, sql, &result, peak_mem, trace);
        result
    }

    /// The body of [`Database::execute_with`], with phase boundaries reported
    /// into `probe` (every lap is a no-op when telemetry is off).
    fn execute_probed(
        &self,
        sql: &str,
        params: &[Value],
        probe: &mut StatementProbe,
        ctx: &StatementCtx,
    ) -> Result<StatementResult> {
        // `sys.*` statements never touch the plan cache: their plans embed
        // point-in-time telemetry snapshots.
        if self.config.plan_cache && !sys::mentions_sys(sql) {
            if let Some((planned, has_params, version, verified)) = self.cached_plan(sql) {
                probe.cache_hit = true;
                let t = probe.phase();
                let verify_result =
                    self.verify_cached(&planned, has_params, version, &verified, sql);
                // The verifier's (memoized) walk stands in for the skipped
                // plan phase in the trace, tagged as a cache hit.
                if let (Some(trace), Some(from)) = (&ctx.trace, t) {
                    trace.record_since(
                        ROOT_SPAN,
                        "plan",
                        from,
                        None,
                        vec![
                            ("cache", AttrValue::Text("hit")),
                            ("nodes", AttrValue::Int(planned.plan.node_count() as i64)),
                        ],
                    );
                }
                let result = verify_result
                    .and_then(|()| self.execute_cached(&planned, has_params, params, ctx));
                probe.lap_exec(t);
                return result;
            }
        }
        let t = probe.phase();
        let stmt = parse_statement(sql)?;
        probe.lap_parse(t);
        ctx.record_phase("parse", t);
        let t = probe.phase();
        self.analyze_statement(&stmt)?;
        probe.lap_sema(t);
        ctx.record_phase("sema", t);
        if let Statement::Query(query) = &stmt {
            return self.execute_query_probed(sql, query, params, probe, ctx);
        }
        // DML / DDL / transaction control interleave planning with catalog
        // writes; attribute the whole tail to the exec phase.
        let t = probe.phase();
        let result = self.execute_statement(sql, &stmt, params, ctx);
        probe.lap_exec(t);
        ctx.record_exec(t);
        result
    }

    /// Plan-cache-aware execution of a parsed query on a cache miss: plan
    /// (symbolically when parameterized and template-safe), cache, execute.
    /// Shared by [`Database::execute_with`] and [`Prepared::execute`] so
    /// the two record identical phase timings and cache telemetry.
    fn execute_query_probed(
        &self,
        sql: &str,
        query: &Query,
        params: &[Value],
        probe: &mut StatementProbe,
        ctx: &StatementCtx,
    ) -> Result<StatementResult> {
        let has_params = crate::plan::query_contains_params(query);
        let cacheable = self.config.plan_cache
            && !sys::mentions_sys(sql)
            && (!has_params
                || !crate::plan::params_unsupported(query, self.config.materialize_ctes));
        let t = probe.phase();
        if cacheable {
            let planned = self.plan_and_cache(sql, query, has_params)?;
            probe.lap_plan(t);
            ctx.record_plan_span(t, &planned.plan);
            let t = probe.phase();
            let result = self.execute_cached(&planned, has_params, params, ctx);
            probe.lap_exec(t);
            return result;
        }
        // Plan under the read lock; execute on snapshots afterwards.
        let planned = {
            let catalog = self.catalog.read();
            let mut planner =
                Planner::new(&catalog, params, self.config.planner()).with_virtuals(self);
            let planned = Arc::new(planner.plan_query(query)?);
            if self.config.verify_plans {
                let report = crate::verify::verify_planned(
                    &planned,
                    Some(&catalog),
                    SnapshotGuarantee::Current,
                    ParamDiscipline::Bound,
                );
                self.verify_outcome(report, ParamDiscipline::Bound, sql)?;
            }
            planned
        };
        probe.lap_plan(t);
        ctx.record_plan_span(t, &planned.plan);
        let t = probe.phase();
        let result = self.execute_planned(&planned, ctx);
        probe.lap_exec(t);
        result
    }

    /// Report one finished statement to the telemetry registry: per-variant
    /// error counters, budget-abort counter, and the query-log entry with
    /// the statement's peak operator memory and its wait totals (backfilled
    /// from the trace when one was captured). Runs the trace keep decision
    /// last — errors and slow statements always, the rest per the sampler —
    /// and stores kept traces in the `sys.trace_spans` ring.
    fn finish_statement(
        &self,
        probe: &StatementProbe,
        sql: &str,
        result: &Result<StatementResult>,
        peak_mem: u64,
        trace: Option<TraceCtx>,
    ) {
        if let Err(e) = result {
            self.telemetry.record_error(e);
            if self.telemetry.enabled() && matches!(e, EngineError::ResourceExhausted { .. }) {
                self.telemetry.mem_budget_aborts.incr();
            }
        }
        if !probe.enabled() {
            return;
        }
        let waits = trace.as_ref().map(|t| WaitTotals::from_spans(&t.spans()));
        let id = match result {
            Ok(r) => self.telemetry.record_statement(
                probe,
                sql,
                QueryStatus::Ok,
                None,
                r.affected() as u64,
                peak_mem,
                waits,
            ),
            Err(e) => {
                let status = if matches!(e, EngineError::Timeout) {
                    QueryStatus::Timeout
                } else {
                    QueryStatus::Error
                };
                self.telemetry.record_statement(
                    probe,
                    sql,
                    status,
                    Some(e.to_string()),
                    0,
                    peak_mem,
                    waits,
                )
            }
        };
        if let (Some(trace), Some(id)) = (trace, id) {
            let total_us = probe.total_us();
            let error_or_slow = result.is_err() || self.telemetry.is_slow(total_us);
            if self.config.trace_sampling.keep(id, error_or_slow) {
                self.telemetry.store_trace(StatementTrace {
                    statement_id: id,
                    spans: trace.finish("statement", total_us),
                });
            }
        }
    }

    /// Execute a semicolon-separated script; returns the last statement's
    /// result. Each statement is logged individually (spans recover the
    /// original text), so script-driven clients show up in `sys.query_log`
    /// like everyone else.
    pub fn execute_script(&self, sql: &str) -> Result<StatementResult> {
        let stmts = parse_script_spanned(sql)?;
        let mut last = StatementResult::Affected(0);
        for (stmt, span) in &stmts {
            let text = sql
                .get(span.start as usize..span.end as usize)
                .unwrap_or(sql)
                .trim();
            let mut probe = StatementProbe::start(self.telemetry.enabled());
            let (result, peak_mem, trace) = match self.begin_statement() {
                Ok(mut ctx) => {
                    let r = (|| {
                        // Checked per statement (not up front): earlier
                        // statements may create the tables later ones refer
                        // to.
                        let t = probe.phase();
                        self.analyze_statement(stmt)?;
                        probe.lap_sema(t);
                        ctx.record_phase("sema", t);
                        let t = probe.phase();
                        let r = self.execute_statement(text, stmt, &[], &ctx)?;
                        probe.lap_exec(t);
                        ctx.record_exec(t);
                        Ok(r)
                    })();
                    (r, ctx.budget.peak_bytes(), ctx.trace.take())
                }
                Err(e) => (Err(e), 0, None),
            };
            let result = result.map_err(|e| e.with_statement_span(text));
            self.finish_statement(&probe, text, &result, peak_mem, trace);
            last = result?;
        }
        Ok(last)
    }

    /// Run a `SELECT` and return its rows.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.execute(sql)?.into_rows()
    }

    /// Run a `SELECT` with parameters.
    pub fn query_with(&self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        self.execute_with(sql, params)?.into_rows()
    }

    /// Run a `SELECT` expected to return a single scalar.
    pub fn query_scalar(&self, sql: &str) -> Result<Value> {
        let r = self.query(sql)?;
        r.scalar()
            .cloned()
            .ok_or_else(|| EngineError::exec("query returned no rows"))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog.read().table_names()
    }

    /// Number of rows in a table.
    pub fn table_rows(&self, name: &str) -> Result<usize> {
        Ok(self.catalog.read().get(name)?.row_count())
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.read().contains(name)
    }

    /// Parse a statement once for repeated execution with different
    /// parameters. Queries additionally go through the plan cache: the first
    /// execution plans once (keeping `?` markers symbolic) and caches the
    /// template; later executions bind their parameter values into the
    /// cached tree until a catalog write invalidates it.
    pub fn prepare(&self, sql: &str) -> Result<Prepared<'_>> {
        let stmt = parse_statement(sql)?;
        self.analyze_statement(&stmt)?;
        Ok(Prepared {
            db: self,
            sql: sql.to_string(),
            stmt,
        })
    }

    /// Statically check a statement against the current catalog without
    /// planning or executing it. Returns the typed output schema for
    /// queries (empty for DML/DDL). All execution entry points run the same
    /// analysis first, so a statement rejected here never executes.
    pub fn check(&self, sql: &str) -> Result<crate::sema::CheckReport> {
        let stmt = parse_statement(sql)?;
        let catalog = self.catalog.read();
        crate::sema::check_statement(&catalog, &stmt)
    }

    fn analyze_statement(&self, stmt: &Statement) -> Result<()> {
        let catalog = self.catalog.read();
        crate::sema::check_statement(&catalog, stmt).map(|_| ())
    }

    /// Render the physical plan of a query (an `EXPLAIN` equivalent).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let stmt = parse_statement(sql)?;
        let Statement::Query(query) = stmt else {
            return Err(EngineError::plan("EXPLAIN supports only SELECT queries"));
        };
        let catalog = self.catalog.read();
        crate::sema::check_query(&catalog, &query)?;
        let mut planner = Planner::new(&catalog, &[], self.config.planner()).with_virtuals(self);
        let planned = planner.plan_query(&query)?;
        Ok(crate::explain::render_plan(&planned.plan))
    }

    /// Run a `SELECT` and also return the per-operator runtime statistics
    /// tree (rows in/out and elapsed time per operator).
    pub fn query_analyzed(&self, sql: &str) -> Result<(QueryResult, OpStats)> {
        let stmt = parse_statement(sql)?;
        let Statement::Query(query) = stmt else {
            return Err(EngineError::plan("ANALYZE supports only SELECT queries"));
        };
        let stmt_ctx = self.begin_statement()?;
        // Serve the plan from the cache when one exists, so ANALYZE observes
        // (and the verifier vets) the very tree repeated executions use.
        // Parameter templates are skipped — there are no values to bind
        // here — and the hit/miss counters are left alone: ANALYZE is a
        // diagnostic read, not serving traffic.
        let cached = if self.config.plan_cache && !sys::mentions_sys(sql) {
            let version = self.catalog_version.load(Ordering::Acquire);
            let key = normalize_cache_key(sql);
            let cache = self.plan_cache.lock();
            cache
                .get(&key)
                .filter(|c| c.version == version && !c.has_params)
                .map(|c| {
                    (
                        Arc::clone(&c.planned),
                        c.version,
                        Arc::clone(&c.verified_version),
                    )
                })
        } else {
            None
        };
        let planned = match cached {
            Some((planned, version, verified)) => {
                self.verify_cached(&planned, false, version, &verified, sql)?;
                planned
            }
            None => {
                let catalog = self.catalog.read();
                crate::sema::check_query(&catalog, &query)?;
                let mut planner =
                    Planner::new(&catalog, &[], self.config.planner()).with_virtuals(self);
                let planned = Arc::new(planner.plan_query(&query)?);
                if self.config.verify_plans {
                    let report = crate::verify::verify_planned(
                        &planned,
                        Some(&catalog),
                        SnapshotGuarantee::Current,
                        ParamDiscipline::Bound,
                    );
                    self.verify_outcome(report, ParamDiscipline::Bound, sql)?;
                }
                planned
            }
        };
        self.record_plan_modes(&planned.plan);
        let (rows, stats) = self.exec_ctx(&stmt_ctx).execute_with_stats(&planned.plan)?;
        self.telemetry.record_op_stats(&stats);
        Ok((
            QueryResult {
                columns: planned.columns.clone(),
                rows,
            },
            stats,
        ))
    }

    /// Execute a query and render its `EXPLAIN ANALYZE` tree.
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let (_, stats) = self.query_analyzed(sql)?;
        Ok(crate::explain::render_analyze(&stats))
    }

    /// Dump a table's schema, primary-key columns, and rows (used by
    /// snapshots).
    pub fn dump_table(
        &self,
        name: &str,
    ) -> Result<(
        crate::catalog::Schema,
        Vec<String>,
        std::sync::Arc<Vec<Row>>,
    )> {
        let catalog = self.catalog.read();
        let t = catalog.get(name)?;
        let pk = t
            .primary
            .as_ref()
            .map(|p| {
                p.key_columns
                    .iter()
                    .map(|&i| t.schema.columns[i].name.clone())
                    .collect()
            })
            .unwrap_or_default();
        Ok((t.schema.clone(), pk, std::sync::Arc::clone(&t.rows)))
    }

    /// Install a table with pre-built rows (used by snapshot restore).
    pub fn restore_table(&self, mut table: Table, rows: Vec<Row>) -> Result<()> {
        // Pass the admission gate like any other statement; `install_table`
        // itself stays ungated so internal callers cannot self-deadlock.
        let _ctx = self.begin_statement()?;
        for row in rows {
            table.insert_row(row, None)?;
        }
        self.install_table(table)
    }

    /// Install a fully built table into the catalog, logging its schema,
    /// indexes, and rows to the WAL as one batch.
    pub(crate) fn install_table(&self, table: Table) -> Result<()> {
        let ops = self.wal.is_some().then(|| {
            let primary_key: Vec<String> = table
                .primary
                .as_ref()
                .map(|p| {
                    p.key_columns
                        .iter()
                        .map(|&i| table.schema.columns[i].name.clone())
                        .collect()
                })
                .unwrap_or_default();
            let mut ops = vec![WalOp::CreateTable {
                name: table.name.clone(),
                columns: table
                    .schema
                    .columns
                    .iter()
                    .map(|c| (c.name.clone(), c.ty))
                    .collect(),
                primary_key,
            }];
            for index in &table.secondary {
                ops.push(WalOp::CreateIndex {
                    table: table.name.clone(),
                    name: index.name.clone(),
                    columns: index
                        .key_columns
                        .iter()
                        .map(|&i| table.schema.columns[i].name.clone())
                        .collect(),
                    unique: false,
                });
            }
            if !table.rows.is_empty() {
                ops.push(WalOp::Insert {
                    table: table.name.clone(),
                    rows: table.rows.as_ref().clone(),
                });
            }
            ops
        });
        let deadline = self
            .config
            .statement_timeout
            .map(|limit| Instant::now() + limit);
        let mut catalog = self.write_catalog()?;
        catalog.create_table(table, false)?;
        let ticket = match ops {
            Some(ops) => self.wal_log(&catalog, ops, deadline, None)?,
            None => None,
        };
        drop(catalog);
        self.wal_wait(ticket, deadline, None)
    }

    /// Bulk-insert pre-built rows into a table (fast path used by data
    /// generators; equivalent to `INSERT INTO t VALUES ...`).
    pub fn insert_rows(&self, table: &str, rows: Vec<Row>) -> Result<usize> {
        let ctx = self.begin_statement()?;
        let mut catalog = self.write_catalog()?;
        let t = catalog.get_mut(table)?;
        let wal_on = self.wal.is_some();
        let mut applied = Vec::new();
        let mut n = 0usize;
        let mut failure = None;
        for row in rows {
            match t.insert_row(row, None) {
                Ok(_) => {
                    n += 1;
                    if wal_on {
                        applied.push(t.rows.last().expect("row just inserted").clone());
                    }
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        let wal_result = if applied.is_empty() {
            Ok(None)
        } else {
            self.wal_log(
                &catalog,
                vec![WalOp::Insert {
                    table: table.to_string(),
                    rows: applied,
                }],
                ctx.deadline,
                ctx.wal_scope(),
            )
        };
        drop(catalog);
        if let Some(e) = failure {
            // The applied prefix is in memory and logged; still push it
            // toward disk, but the statement's own error wins.
            if let Ok(ticket) = wal_result {
                let _ = self.wal_wait(ticket, ctx.deadline, ctx.wal_scope());
            }
            return Err(e);
        }
        self.wal_wait(wal_result?, ctx.deadline, ctx.wal_scope())?;
        Ok(n)
    }

    fn execute_statement(
        &self,
        sql: &str,
        stmt: &Statement,
        params: &[Value],
        ctx: &StatementCtx,
    ) -> Result<StatementResult> {
        match stmt {
            Statement::Query(query) => {
                // Plan under the read lock; execute on snapshots afterwards.
                let planned = {
                    let catalog = self.catalog.read();
                    let mut planner =
                        Planner::new(&catalog, params, self.config.planner()).with_virtuals(self);
                    let planned = planner.plan_query(query)?;
                    if self.config.verify_plans {
                        let report = crate::verify::verify_planned(
                            &planned,
                            Some(&catalog),
                            SnapshotGuarantee::Current,
                            ParamDiscipline::Bound,
                        );
                        self.verify_outcome(report, ParamDiscipline::Bound, sql)?;
                    }
                    planned
                };
                let rows = self.exec_ctx(ctx).execute(&planned.plan)?;
                Ok(StatementResult::Rows(QueryResult {
                    columns: planned.columns,
                    rows,
                }))
            }
            Statement::Explain { mode, query } => {
                if *mode == crate::ast::ExplainMode::Check {
                    // Semantic analysis only: report the typed output schema
                    // without planning or executing anything.
                    let report = {
                        let catalog = self.catalog.read();
                        crate::sema::check_query(&catalog, query)?
                    };
                    return Ok(StatementResult::Rows(QueryResult {
                        columns: vec!["column".to_string(), "type".to_string()],
                        rows: report
                            .columns
                            .into_iter()
                            .map(|(name, ty)| {
                                vec![Value::Str(name.into()), Value::Str(ty.to_string().into())]
                            })
                            .collect(),
                    }));
                }
                // `EXPLAIN (VERIFY)` runs the verifier unconditionally (it
                // is an explicit request); `EXPLAIN ANALYZE` and
                // `EXPLAIN (TRACE)` vet the plan first whenever verification
                // is on, so a rejected plan is reported instead of executed.
                let verify_now = *mode == crate::ast::ExplainMode::Verify
                    || (matches!(
                        mode,
                        crate::ast::ExplainMode::Analyze | crate::ast::ExplainMode::Trace
                    ) && self.config.verify_plans);
                // `EXPLAIN (TRACE)` forces a local trace regardless of the
                // engine's sampling policy; its origin predates planning so
                // the plan span has a true offset.
                let trace = (*mode == crate::ast::ExplainMode::Trace).then(TraceCtx::new);
                let plan_from = trace.as_ref().map(|_| Instant::now());
                let (planned, report) = {
                    let catalog = self.catalog.read();
                    let mut planner =
                        Planner::new(&catalog, params, self.config.planner()).with_virtuals(self);
                    let planned = planner.plan_query(query)?;
                    let report = verify_now.then(|| {
                        crate::verify::verify_planned(
                            &planned,
                            Some(&catalog),
                            SnapshotGuarantee::Current,
                            ParamDiscipline::Bound,
                        )
                    });
                    (planned, report)
                };
                if *mode == crate::ast::ExplainMode::Verify {
                    let report = report.expect("verify mode always computes a report");
                    self.record_verify(&report);
                    return Ok(StatementResult::Rows(QueryResult {
                        columns: vec![
                            "check".to_string(),
                            "status".to_string(),
                            "detail".to_string(),
                        ],
                        rows: VerifyRule::ALL
                            .iter()
                            .map(|rule| {
                                let details: Vec<String> = report
                                    .violations
                                    .iter()
                                    .filter(|v| v.rule == *rule)
                                    .map(|v| format!("{}: {}", v.node, v.message))
                                    .collect();
                                vec![
                                    Value::text(rule.name()),
                                    Value::text(if details.is_empty() {
                                        "ok"
                                    } else {
                                        "violation"
                                    }),
                                    Value::text(details.join("; ")),
                                ]
                            })
                            .collect(),
                    }));
                }
                let rendered = match mode {
                    crate::ast::ExplainMode::Analyze => {
                        if let Some(report) = report {
                            self.verify_outcome(report, ParamDiscipline::Bound, sql)?;
                        }
                        let (_, stats) = self.exec_ctx(ctx).execute_with_stats(&planned.plan)?;
                        self.telemetry.record_op_stats(&stats);
                        crate::explain::render_analyze(&stats)
                    }
                    crate::ast::ExplainMode::Trace => {
                        if let Some(report) = report {
                            self.verify_outcome(report, ParamDiscipline::Bound, sql)?;
                        }
                        let trace = trace.expect("trace mode allocates its recorder");
                        if let Some(from) = plan_from {
                            trace.record_since(
                                ROOT_SPAN,
                                "plan",
                                from,
                                None,
                                vec![
                                    ("cache", AttrValue::Text("miss")),
                                    ("nodes", AttrValue::Int(planned.plan.node_count() as i64)),
                                ],
                            );
                        }
                        let exec_from = Instant::now();
                        let (_, stats) = self.exec_ctx(ctx).execute_with_stats(&planned.plan)?;
                        let exec_start = trace.offset_us(exec_from);
                        trace.record_exec(exec_from, Vec::new());
                        trace.record_op_tree(&stats, exec_start);
                        self.telemetry.record_op_stats(&stats);
                        let total_us = trace.origin().elapsed().as_micros() as u64;
                        crate::explain::render_trace(&trace.finish("statement", total_us))
                    }
                    _ => crate::explain::render_plan(&planned.plan),
                };
                let column = if *mode == crate::ast::ExplainMode::Trace {
                    "trace"
                } else {
                    "plan"
                };
                Ok(StatementResult::Rows(QueryResult {
                    columns: vec![column.to_string()],
                    rows: rendered
                        .lines()
                        .map(|l| vec![Value::Str(l.into())])
                        .collect(),
                }))
            }
            Statement::CreateTable(ct) => {
                let columns: Vec<(String, DataType)> =
                    ct.columns.iter().map(|c| (c.name.clone(), c.ty)).collect();
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|(name, ty)| Column {
                            name: name.clone(),
                            ty: *ty,
                        })
                        .collect(),
                );
                let table = Table::new(ct.name.clone(), schema, &ct.primary_key)?;
                let mut catalog = self.write_catalog()?;
                let created = catalog.create_table(table, ct.if_not_exists)?;
                let ticket = if created {
                    self.wal_log(
                        &catalog,
                        vec![WalOp::CreateTable {
                            name: ct.name.clone(),
                            columns,
                            primary_key: ct.primary_key.clone(),
                        }],
                        ctx.deadline,
                        ctx.wal_scope(),
                    )?
                } else {
                    None
                };
                drop(catalog);
                self.wal_wait(ticket, ctx.deadline, ctx.wal_scope())?;
                Ok(StatementResult::Affected(0))
            }
            Statement::CreateIndex(ci) => {
                let mut catalog = self.write_catalog()?;
                let table = catalog.get_mut(&ci.table)?;
                if table.has_index(&ci.name) {
                    if ci.if_not_exists {
                        return Ok(StatementResult::Affected(0));
                    }
                    return Err(EngineError::catalog(format!(
                        "index '{}' already exists",
                        ci.name
                    )));
                }
                table.create_index(&ci.name, &ci.columns, ci.unique)?;
                let ticket = self.wal_log(
                    &catalog,
                    vec![WalOp::CreateIndex {
                        table: ci.table.clone(),
                        name: ci.name.clone(),
                        columns: ci.columns.clone(),
                        unique: ci.unique,
                    }],
                    ctx.deadline,
                    ctx.wal_scope(),
                )?;
                drop(catalog);
                self.wal_wait(ticket, ctx.deadline, ctx.wal_scope())?;
                Ok(StatementResult::Affected(0))
            }
            Statement::DropTable { name, if_exists } => {
                let mut catalog = self.write_catalog()?;
                let dropped = catalog.drop_table(name, *if_exists)?;
                let ticket = if dropped {
                    self.wal_log(
                        &catalog,
                        vec![WalOp::DropTable { name: name.clone() }],
                        ctx.deadline,
                        ctx.wal_scope(),
                    )?
                } else {
                    None
                };
                drop(catalog);
                self.wal_wait(ticket, ctx.deadline, ctx.wal_scope())?;
                Ok(StatementResult::Affected(0))
            }
            Statement::CreateTableAs {
                name,
                if_not_exists,
                query,
            } => {
                let planned = {
                    let catalog = self.catalog.read();
                    let mut planner =
                        Planner::new(&catalog, params, self.config.planner()).with_virtuals(self);
                    planner.plan_query(query)?
                };
                let rows = self.exec_ctx(ctx).execute(&planned.plan)?;
                let columns: Vec<(String, DataType)> = planned
                    .columns
                    .iter()
                    .map(|c| (c.clone(), DataType::Any))
                    .collect();
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|(name, ty)| Column {
                            name: name.clone(),
                            ty: *ty,
                        })
                        .collect(),
                );
                let mut table = Table::new(name.clone(), schema, &[])?;
                let n = rows.len();
                // Clone the result rows for the log up front: the table takes
                // ownership of them below.
                let logged_rows = self.wal.is_some().then(|| rows.clone());
                for row in rows {
                    table.insert_row(row, None)?;
                }
                let mut catalog = self.write_catalog()?;
                let created = catalog.create_table(table, *if_not_exists)?;
                let ticket = if created {
                    let mut ops = vec![WalOp::CreateTable {
                        name: name.clone(),
                        columns,
                        primary_key: Vec::new(),
                    }];
                    if let Some(rows) = logged_rows {
                        if !rows.is_empty() {
                            ops.push(WalOp::Insert {
                                table: name.clone(),
                                rows,
                            });
                        }
                    }
                    self.wal_log(&catalog, ops, ctx.deadline, ctx.wal_scope())?
                } else {
                    None
                };
                drop(catalog);
                self.wal_wait(ticket, ctx.deadline, ctx.wal_scope())?;
                Ok(StatementResult::Affected(n))
            }
            Statement::Begin => {
                let mut backup = self.txn_backup.lock();
                if backup.is_some() {
                    return Err(EngineError::exec("a transaction is already in progress"));
                }
                *backup = Some(self.catalog.read().clone());
                if let Some(wal) = &self.wal {
                    wal.begin();
                }
                Ok(StatementResult::Affected(0))
            }
            Statement::Commit => {
                let mut backup = self.txn_backup.lock();
                if backup.is_none() {
                    return Err(EngineError::exec("no transaction in progress"));
                }
                // Flush the transaction's buffered ops as one batch while
                // holding the catalog lock, so the flush serializes with any
                // concurrent writer. A plain `write()` (no version bump): the
                // catalog itself is not mutated here.
                let flush = match &self.wal {
                    Some(wal) => {
                        let catalog = self.catalog.write();
                        let scope = ctx.wal_scope();
                        wal.commit_traced(&catalog, ctx.deadline, scope.as_ref())
                    }
                    None => Ok(None),
                };
                backup.take();
                // Release the transaction guard before blocking on the group
                // flush (`wal_wait` re-reads transaction state).
                drop(backup);
                self.wal_wait(flush?, ctx.deadline, ctx.wal_scope())?;
                Ok(StatementResult::Affected(0))
            }
            Statement::Rollback => {
                let mut backup = self.txn_backup.lock();
                match backup.take() {
                    Some(saved) => {
                        // Restore and discard the WAL's buffered ops under one
                        // guard: nothing was written durably since BEGIN, so
                        // the durable state already equals `saved`.
                        let mut catalog = self.write_catalog()?;
                        *catalog = saved;
                        if let Some(wal) = &self.wal {
                            wal.rollback();
                        }
                        Ok(StatementResult::Affected(0))
                    }
                    None => Err(EngineError::exec("no transaction in progress")),
                }
            }
            Statement::Insert(insert) => self.execute_insert(insert, params, ctx),
            Statement::Delete {
                table, predicate, ..
            } => {
                let predicate = self.resolve_dml_subqueries(predicate.clone(), params)?;
                let mut catalog = self.write_catalog()?;
                let t = catalog.get_mut(table)?;
                let idxs = match &predicate {
                    None => (0..t.row_count()).collect(),
                    Some(pred) => {
                        let scope = table_scope(t);
                        let bound = bind_expr(pred, &scope, params)?;
                        let mut idxs = Vec::new();
                        for (i, row) in t.rows.iter().enumerate() {
                            if bound.eval(row)?.as_bool()? == Some(true) {
                                idxs.push(i);
                            }
                        }
                        idxs
                    }
                };
                let logged_idxs = (self.wal.is_some() && !idxs.is_empty())
                    .then(|| idxs.iter().map(|&i| i as u64).collect::<Vec<u64>>());
                let n = t.delete_rows(idxs)?;
                let mut ticket = None;
                if let Some(idxs) = logged_idxs {
                    if n > 0 {
                        ticket = self.wal_log(
                            &catalog,
                            vec![WalOp::Delete {
                                table: table.clone(),
                                idxs,
                            }],
                            ctx.deadline,
                            ctx.wal_scope(),
                        )?;
                    }
                }
                drop(catalog);
                self.wal_wait(ticket, ctx.deadline, ctx.wal_scope())?;
                Ok(StatementResult::Affected(n))
            }
            Statement::Update {
                table,
                assignments,
                predicate,
                ..
            } => {
                let predicate = self.resolve_dml_subqueries(predicate.clone(), params)?;
                let mut catalog = self.write_catalog()?;
                let t = catalog.get_mut(table)?;
                let scope = table_scope(t);
                let bound_pred = predicate
                    .as_ref()
                    .map(|p| bind_expr(p, &scope, params))
                    .transpose()?;
                let mut bound_assignments = Vec::with_capacity(assignments.len());
                for (col, expr) in assignments {
                    let pos = t.schema.position(col).ok_or_else(|| {
                        EngineError::plan(format!("unknown column '{col}' in UPDATE"))
                    })?;
                    bound_assignments.push((pos, bind_expr(expr, &scope, params)?));
                }
                let mut updates = Vec::new();
                for (i, row) in t.rows.iter().enumerate() {
                    let matches = match &bound_pred {
                        None => true,
                        Some(p) => p.eval(row)?.as_bool()? == Some(true),
                    };
                    if matches {
                        let mut new_row = row.clone();
                        for (pos, e) in &bound_assignments {
                            new_row[*pos] = e.eval(row)?;
                        }
                        updates.push((i, new_row));
                    }
                }
                let wal_on = self.wal.is_some();
                let mut ops = Vec::new();
                let mut applied = 0usize;
                let mut failure = None;
                for (i, new_row) in updates {
                    let logged = wal_on.then(|| new_row.clone());
                    if let Err(e) = t.replace_row(i, new_row) {
                        failure = Some(e);
                        break;
                    }
                    applied += 1;
                    if let Some(row) = logged {
                        ops.push(WalOp::Replace {
                            table: table.clone(),
                            idx: i as u64,
                            row,
                        });
                    }
                }
                // A statement that failed midway still logs the prefix it
                // applied — recovery must reproduce the in-memory state, not
                // an idealized all-or-nothing one.
                let wal_result = if ops.is_empty() {
                    Ok(None)
                } else {
                    self.wal_log(&catalog, ops, ctx.deadline, ctx.wal_scope())
                };
                drop(catalog);
                if let Some(e) = failure {
                    if let Ok(ticket) = wal_result {
                        let _ = self.wal_wait(ticket, ctx.deadline, ctx.wal_scope());
                    }
                    return Err(e);
                }
                self.wal_wait(wal_result?, ctx.deadline, ctx.wal_scope())?;
                Ok(StatementResult::Affected(applied))
            }
        }
    }

    /// Evaluate uncorrelated subqueries inside a DML predicate against the
    /// current catalog (before the write lock is taken).
    fn resolve_dml_subqueries(
        &self,
        predicate: Option<Expr>,
        params: &[Value],
    ) -> Result<Option<Expr>> {
        let Some(mut pred) = predicate else {
            return Ok(None);
        };
        let catalog = self.catalog.read();
        let mut planner = Planner::new(&catalog, params, self.config.planner()).with_virtuals(self);
        planner.resolve_subqueries(&mut pred)?;
        Ok(Some(pred))
    }

    fn execute_insert(
        &self,
        insert: &crate::ast::Insert,
        params: &[Value],
        ctx: &StatementCtx,
    ) -> Result<StatementResult> {
        // Evaluate the source rows to completion *before* taking the write
        // lock. The source query plans under a read lock and captures `Arc`
        // snapshots of every table it scans, so `INSERT INTO t SELECT .. FROM
        // t` reads a consistent pre-statement image of `t` — newly inserted
        // rows can never feed back into the same statement's source, even
        // though the scan snapshot and the write below are separate lock
        // acquisitions (the catalog rows are copy-on-write via `Arc`).
        let source_rows: Vec<Row> = match &insert.source {
            InsertSource::Values(rows) => {
                let scope = Scope::default();
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        vals.push(bind_expr(e, &scope, params)?.eval(&[])?);
                    }
                    out.push(vals);
                }
                out
            }
            InsertSource::Query(q) => {
                let planned = {
                    let catalog = self.catalog.read();
                    let mut planner =
                        Planner::new(&catalog, params, self.config.planner()).with_virtuals(self);
                    planner.plan_query(q)?
                };
                self.exec_ctx(ctx).execute(&planned.plan)?
            }
        };

        let mut catalog = self.write_catalog()?;
        let t = catalog.get_mut(&insert.table)?;

        // Map provided columns to schema positions.
        let positions: Vec<usize> = if insert.columns.is_empty() {
            (0..t.schema.len()).collect()
        } else {
            insert
                .columns
                .iter()
                .map(|c| {
                    t.schema.position(c).ok_or_else(|| {
                        EngineError::plan(format!(
                            "unknown column '{c}' in INSERT INTO {}",
                            insert.table
                        ))
                    })
                })
                .collect::<Result<_>>()?
        };

        // Resolve the conflict clause.
        let (resolved, do_update) = match &insert.on_conflict {
            None => (None, None),
            Some(oc) => {
                let primary = t.primary.as_ref().ok_or_else(|| {
                    EngineError::plan(format!(
                        "ON CONFLICT on table '{}' which has no unique index",
                        insert.table
                    ))
                })?;
                if !oc.target_columns.is_empty() {
                    let mut target: Vec<usize> = oc
                        .target_columns
                        .iter()
                        .map(|c| {
                            t.schema.position(c).ok_or_else(|| {
                                EngineError::plan(format!("unknown conflict column '{c}'"))
                            })
                        })
                        .collect::<Result<_>>()?;
                    target.sort_unstable();
                    let mut key = primary.key_columns.clone();
                    key.sort_unstable();
                    if target != key {
                        return Err(EngineError::plan(format!(
                            "ON CONFLICT target does not match the unique index of '{}'",
                            insert.table
                        )));
                    }
                }
                match &oc.action {
                    ConflictAction::DoNothing => (Some(ResolvedConflict::DoNothing), None),
                    ConflictAction::DoUpdate(assignments) => {
                        // Bind assignments against [existing row, excluded row].
                        let mut labels: Vec<ColLabel> = t
                            .schema
                            .columns
                            .iter()
                            .map(|c| ColLabel::new(Some(&t.name), &c.name))
                            .collect();
                        labels.extend(
                            t.schema
                                .columns
                                .iter()
                                .map(|c| ColLabel::new(Some("excluded"), &c.name)),
                        );
                        let scope = Scope::new(labels);
                        let table_name = t.name.clone();
                        let mut bound = Vec::with_capacity(assignments.len());
                        for (col, expr) in assignments {
                            let pos = t.schema.position(col).ok_or_else(|| {
                                EngineError::plan(format!(
                                    "unknown column '{col}' in DO UPDATE SET"
                                ))
                            })?;
                            // PostgreSQL resolves bare columns to the existing
                            // row; qualify them with the table name up front.
                            let mut expr = expr.clone();
                            qualify_bare_columns(&mut expr, &table_name);
                            bound.push((pos, bind_expr(&expr, &scope, params)?));
                        }
                        (Some(ResolvedConflict::DoUpdate), Some(bound))
                    }
                }
            }
        };

        let width = t.schema.len();
        let wal_on = self.wal.is_some();
        let mut ops: Vec<WalOp> = Vec::new();
        let mut affected = 0usize;
        // Errors are captured rather than propagated with `?` so the ops of
        // the successfully applied prefix still reach the WAL — recovery must
        // reproduce the in-memory state a partially failed statement left
        // behind, exactly.
        let mut failure: Option<EngineError> = None;
        'rows: for src in source_rows {
            if src.len() != positions.len() {
                failure = Some(EngineError::exec(format!(
                    "INSERT expects {} values per row, got {}",
                    positions.len(),
                    src.len()
                )));
                break;
            }
            let mut row: Row = vec![Value::Null; width];
            for (pos, v) in positions.iter().zip(src) {
                row[*pos] = v;
            }
            match t.insert_row(row, resolved.as_ref()) {
                Ok(InsertOutcome::Inserted) => {
                    affected += 1;
                    if wal_on {
                        // Log the row as stored (insert_row may coerce
                        // values), so replay matches byte for byte.
                        let stored = t.rows.last().expect("row just inserted").clone();
                        push_insert(&mut ops, &insert.table, stored);
                    }
                }
                Ok(InsertOutcome::Ignored) => {}
                Ok(InsertOutcome::Conflict {
                    existing_idx,
                    proposed,
                }) => {
                    let assignments = do_update
                        .as_ref()
                        .expect("DoUpdate resolution implies bound assignments");
                    // Evaluation row = existing ++ excluded.
                    let mut eval_row = t.rows[existing_idx].clone();
                    eval_row.extend(proposed);
                    let mut new_row = t.rows[existing_idx].clone();
                    for (pos, e) in assignments {
                        match e.eval(&eval_row) {
                            Ok(v) => new_row[*pos] = v,
                            Err(e) => {
                                failure = Some(e);
                                break 'rows;
                            }
                        }
                    }
                    let logged = wal_on.then(|| new_row.clone());
                    if let Err(e) = t.replace_row(existing_idx, new_row) {
                        failure = Some(e);
                        break;
                    }
                    affected += 1;
                    if let Some(row) = logged {
                        ops.push(WalOp::Replace {
                            table: insert.table.clone(),
                            idx: existing_idx as u64,
                            row,
                        });
                    }
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        let wal_result = if ops.is_empty() {
            Ok(None)
        } else {
            self.wal_log(&catalog, ops, ctx.deadline, ctx.wal_scope())
        };
        drop(catalog);
        if let Some(e) = failure {
            if let Ok(ticket) = wal_result {
                let _ = self.wal_wait(ticket, ctx.deadline, ctx.wal_scope());
            }
            return Err(e);
        }
        self.wal_wait(wal_result?, ctx.deadline, ctx.wal_scope())?;
        Ok(StatementResult::Affected(affected))
    }
}

// ----------------------------------------------------------------------
// Virtual `sys.*` tables
// ----------------------------------------------------------------------

/// One `sys.metrics` row.
fn metric(name: &str, kind: &str, value: f64) -> Row {
    vec![Value::text(name), Value::text(kind), Value::Float(value)]
}

/// Append the five summary rows of one latency histogram.
fn histogram_metrics(rows: &mut Vec<Row>, prefix: &str, h: &crate::telemetry::Histogram) {
    rows.push(metric(
        &format!("{prefix}.count"),
        "counter",
        h.count() as f64,
    ));
    rows.push(metric(
        &format!("{prefix}.mean_us"),
        "histogram",
        h.mean_micros(),
    ));
    rows.push(metric(
        &format!("{prefix}.p50_us"),
        "histogram",
        h.percentile_micros(0.50),
    ));
    rows.push(metric(
        &format!("{prefix}.p99_us"),
        "histogram",
        h.percentile_micros(0.99),
    ));
    rows.push(metric(
        &format!("{prefix}.max_us"),
        "histogram",
        h.max_micros() as f64,
    ));
}

impl Database {
    fn sys_metrics_rows(&self, catalog: &Catalog) -> Vec<Row> {
        let t = &self.telemetry;
        let (hits, misses, evictions) = self.plan_cache_metrics();
        // Columnar gauges reflect *built* chunk caches only: tables never
        // scanned by a vectorized query report zero (chunks are lazy).
        let (chunks, dict_cols) = catalog
            .table_names()
            .into_iter()
            .filter_map(|name| catalog.get(&name).ok())
            .fold((0usize, 0usize), |(c, d), table| {
                let (cc, dc) = table.chunk_stats();
                (c + cc, d + dc)
            });
        let mut rows = vec![
            metric("statements.total", "counter", t.statements.get() as f64),
            metric(
                "statements.errors",
                "counter",
                t.statement_errors.get() as f64,
            ),
            metric(
                "statements.timeouts",
                "counter",
                t.statement_timeouts.get() as f64,
            ),
            metric(
                "statements.rows_returned",
                "counter",
                t.rows_returned.get() as f64,
            ),
            metric("plan_cache.hits", "counter", hits as f64),
            metric("plan_cache.misses", "counter", misses as f64),
            metric("plan_cache.evictions", "counter", evictions as f64),
            metric(
                "plan_cache.entries",
                "gauge",
                self.plan_cache.lock().len() as f64,
            ),
            metric("catalog.version", "gauge", self.catalog_version() as f64),
            metric("wal.appends", "counter", t.wal_appends.get() as f64),
            metric(
                "wal.append_bytes",
                "counter",
                t.wal_append_bytes.get() as f64,
            ),
            metric("wal.fsyncs", "counter", t.wal_fsyncs.get() as f64),
            metric("wal.checkpoints", "counter", t.wal_checkpoints.get() as f64),
            metric(
                "wal.checkpoint_bytes",
                "counter",
                t.wal_checkpoint_bytes.get() as f64,
            ),
            metric("wal.bytes", "gauge", self.wal_bytes().unwrap_or(0) as f64),
            metric("columnar.chunks", "gauge", chunks as f64),
            metric("columnar.dict_columns", "gauge", dict_cols as f64),
            metric(
                "exec.vectorized_ops",
                "counter",
                t.vectorized_ops.get() as f64,
            ),
            metric("exec.row_ops", "counter", t.row_ops.get() as f64),
            metric(
                "verify.plans_checked",
                "counter",
                t.verify_plans_checked.get() as f64,
            ),
            metric(
                "verify.violations",
                "counter",
                t.verify_violations.get() as f64,
            ),
            metric(
                "admission.admitted",
                "counter",
                t.admission_admitted.get() as f64,
            ),
            metric(
                "admission.queued",
                "counter",
                t.admission_queued.get() as f64,
            ),
            metric("admission.shed", "counter", t.admission_shed.get() as f64),
            metric("mem.peak_bytes", "gauge", t.mem_peak_bytes.get() as f64),
            metric(
                "mem.budget_aborts",
                "counter",
                t.mem_budget_aborts.get() as f64,
            ),
            metric("wal.retries", "counter", t.wal_retries.get() as f64),
            metric(
                "wal.degraded",
                "gauge",
                f64::from(self.wal.as_ref().is_some_and(Wal::degraded)),
            ),
            metric("errors.timeout", "counter", t.errors_timeout.get() as f64),
            metric("errors.wal", "counter", t.errors_wal.get() as f64),
            metric("errors.resource", "counter", t.errors_resource.get() as f64),
            metric(
                "errors.overloaded",
                "counter",
                t.errors_overloaded.get() as f64,
            ),
            metric(
                "errors.statement",
                "counter",
                t.errors_statement.get() as f64,
            ),
        ];
        histogram_metrics(&mut rows, "phase.parse", &t.parse_us);
        histogram_metrics(&mut rows, "phase.sema", &t.sema_us);
        histogram_metrics(&mut rows, "phase.plan", &t.plan_us);
        histogram_metrics(&mut rows, "phase.exec", &t.exec_us);
        histogram_metrics(&mut rows, "statement.duration", &t.statement_us);
        histogram_metrics(&mut rows, "wal.fsync", &t.wal_fsync_us);
        for (kind, agg) in t.op_rollups() {
            rows.push(metric(
                &format!("op.{kind}.calls"),
                "counter",
                agg.calls as f64,
            ));
            rows.push(metric(
                &format!("op.{kind}.rows_out"),
                "counter",
                agg.rows_out as f64,
            ));
            rows.push(metric(
                &format!("op.{kind}.total_us"),
                "counter",
                agg.nanos as f64 / 1e3,
            ));
        }
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        rows
    }

    fn sys_query_log_rows(&self) -> Vec<Row> {
        self.telemetry
            .query_log()
            .into_iter()
            .map(|e| {
                vec![
                    Value::Int(e.id as i64),
                    Value::Str(e.sql.into()),
                    Value::text(e.status.as_str()),
                    e.error.map_or(Value::Null, |m| Value::Str(m.into())),
                    Value::Int(i64::from(e.cache_hit)),
                    Value::Int(i64::from(e.slow)),
                    Value::Int(e.parse_us as i64),
                    Value::Int(e.sema_us as i64),
                    Value::Int(e.plan_us as i64),
                    Value::Int(e.exec_us as i64),
                    Value::Float(e.total_us as f64 / 1e3),
                    Value::Int(e.rows as i64),
                    Value::Int(e.peak_mem_bytes as i64),
                    e.queue_wait_us
                        .map_or(Value::Null, |v| Value::Int(v as i64)),
                    e.fsync_wait_us
                        .map_or(Value::Null, |v| Value::Int(v as i64)),
                    e.retry_count.map_or(Value::Null, |v| Value::Int(v as i64)),
                ]
            })
            .collect()
    }

    /// Rows of `sys.trace_spans`: every span of every kept statement trace,
    /// joinable to `sys.query_log` on `statement_id`.
    fn sys_trace_spans_rows(&self) -> Vec<Row> {
        self.telemetry
            .traces()
            .into_iter()
            .flat_map(|trace| {
                let statement_id = trace.statement_id;
                trace.spans.into_iter().map(move |s| {
                    vec![
                        Value::Int(statement_id as i64),
                        Value::Int(i64::from(s.id)),
                        s.parent.map_or(Value::Null, |p| Value::Int(i64::from(p))),
                        Value::text(&s.name),
                        Value::Int(s.start_us as i64),
                        Value::Int(s.duration_us as i64),
                        s.wait_class
                            .map_or(Value::Null, |w| Value::text(w.as_str())),
                        s.rows.map_or(Value::Null, |r| Value::Int(r as i64)),
                        Value::Str(s.attrs_text().into()),
                    ]
                })
            })
            .collect()
    }

    /// Rows of `sys.wait_events`: one rollup row per wait class, fed by the
    /// always-on wait histograms (recorded only on contended paths, with or
    /// without trace sampling).
    fn sys_wait_events_rows(&self) -> Vec<Row> {
        let t = &self.telemetry;
        [
            (WaitClass::Admission, &t.wait_admission_us),
            (WaitClass::Fsync, &t.wait_fsync_us),
            (WaitClass::WalRetry, &t.wait_wal_retry_us),
            (WaitClass::WorkerIdle, &t.wait_worker_idle_us),
        ]
        .into_iter()
        .map(|(class, hist)| {
            vec![
                Value::text(class.as_str()),
                Value::Int(hist.count() as i64),
                Value::Int(hist.sum_micros() as i64),
                Value::Float(hist.mean_micros()),
                Value::Int(hist.max_micros() as i64),
            ]
        })
        .collect()
    }

    /// Rows of `sys.histograms`: the raw power-of-two latency buckets behind
    /// every latency histogram, one row per non-empty bucket.
    fn sys_histograms_rows(&self) -> Vec<Row> {
        let t = &self.telemetry;
        let named: [(&str, &Histogram); 10] = [
            ("phase.parse_us", &t.parse_us),
            ("phase.sema_us", &t.sema_us),
            ("phase.plan_us", &t.plan_us),
            ("phase.exec_us", &t.exec_us),
            ("statement.total_us", &t.statement_us),
            ("wal.fsync_us", &t.wal_fsync_us),
            ("wait.admission_us", &t.wait_admission_us),
            ("wait.fsync_us", &t.wait_fsync_us),
            ("wait.wal_retry_us", &t.wait_wal_retry_us),
            ("wait.worker_idle_us", &t.wait_worker_idle_us),
        ];
        let mut rows = Vec::new();
        for (name, hist) in named {
            for (i, count) in hist.bucket_counts().into_iter().enumerate() {
                if count == 0 {
                    continue;
                }
                rows.push(vec![
                    Value::text(name),
                    Value::Int(Histogram::bucket_lo_us(i) as i64),
                    Value::Int(Histogram::bucket_hi_us(i) as i64),
                    Value::Int(count as i64),
                ]);
            }
        }
        rows
    }

    fn sys_tables_rows(catalog: &Catalog) -> Vec<Row> {
        catalog
            .table_names()
            .into_iter()
            .filter_map(|name| {
                let t = catalog.get(&name).ok()?;
                let pk = t
                    .primary
                    .as_ref()
                    .map(|p| {
                        p.key_columns
                            .iter()
                            .map(|&i| t.schema.columns[i].name.as_str())
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .unwrap_or_default();
                let (chunk_count, dict_columns) = t.chunk_stats();
                Some(vec![
                    Value::text(&name),
                    Value::Int(t.row_count() as i64),
                    Value::Int(t.schema.len() as i64),
                    Value::Str(pk.into()),
                    Value::Int(t.secondary.len() as i64),
                    Value::Int(chunk_count as i64),
                    Value::Int(dict_columns as i64),
                ])
            })
            .collect()
    }

    fn sys_born_models_rows(&self) -> Vec<Row> {
        self.telemetry.with_models(|models| {
            models
                .iter()
                .map(|(name, s)| {
                    vec![
                        Value::text(name),
                        Value::Int(i64::from(s.deployed)),
                        Value::Int(s.predict_calls as i64),
                        Value::Float(s.predict_us.mean_micros()),
                        Value::Float(s.predict_us.percentile_micros(0.50)),
                        Value::Float(s.predict_us.percentile_micros(0.99)),
                        Value::Int(s.rows_returned as i64),
                        Value::Int(s.fit_batches as i64),
                        Value::Int(s.unlearn_calls as i64),
                    ]
                })
                .collect()
        })
    }
}

impl VirtualTables for Database {
    fn virtual_table(&self, catalog: &Catalog, name: &str) -> Option<(Schema, Arc<Vec<Row>>)> {
        let canonical = sys::canonical(name)?;
        let schema = sys::schema(canonical).expect("known sys tables have schemas");
        let rows = match canonical {
            sys::METRICS => self.sys_metrics_rows(catalog),
            sys::QUERY_LOG => self.sys_query_log_rows(),
            sys::TABLES => Self::sys_tables_rows(catalog),
            sys::BORN_MODELS => self.sys_born_models_rows(),
            sys::TRACE_SPANS => self.sys_trace_spans_rows(),
            sys::WAIT_EVENTS => self.sys_wait_events_rows(),
            sys::HISTOGRAMS => self.sys_histograms_rows(),
            _ => unreachable!("canonical returns only known names"),
        };
        Some((schema, Arc::new(rows)))
    }
}

/// A statement parsed once, executable many times with fresh parameters.
pub struct Prepared<'db> {
    db: &'db Database,
    sql: String,
    stmt: Statement,
}

impl Prepared<'_> {
    /// Execute with the given parameters.
    pub fn execute(&self, params: &[Value]) -> Result<StatementResult> {
        let mut probe = StatementProbe::start(self.db.telemetry.enabled());
        let (result, peak_mem, trace) = match self.db.begin_statement() {
            Ok(mut ctx) => {
                let r = self.execute_probed(params, &mut probe, &ctx);
                (r, ctx.budget.peak_bytes(), ctx.trace.take())
            }
            Err(e) => (Err(e), 0, None),
        };
        let result = result.map_err(|e| e.with_statement_span(&self.sql));
        self.db
            .finish_statement(&probe, &self.sql, &result, peak_mem, trace);
        result
    }

    /// The body of [`Prepared::execute`]. Mirrors
    /// [`Database::execute_probed`] minus the parse/sema phases (done at
    /// prepare time), so both entry points drive the same cache and record
    /// hits, misses, and phase laps identically.
    fn execute_probed(
        &self,
        params: &[Value],
        probe: &mut StatementProbe,
        ctx: &StatementCtx,
    ) -> Result<StatementResult> {
        if self.db.config.plan_cache && !sys::mentions_sys(&self.sql) {
            if let Some((planned, has_params, version, verified)) = self.db.cached_plan(&self.sql) {
                probe.cache_hit = true;
                let t = probe.phase();
                let verify_result = self
                    .db
                    .verify_cached(&planned, has_params, version, &verified, &self.sql);
                if let (Some(trace), Some(from)) = (&ctx.trace, t) {
                    trace.record_since(
                        ROOT_SPAN,
                        "plan",
                        from,
                        None,
                        vec![
                            ("cache", AttrValue::Text("hit")),
                            ("nodes", AttrValue::Int(planned.plan.node_count() as i64)),
                        ],
                    );
                }
                let result = verify_result
                    .and_then(|()| self.db.execute_cached(&planned, has_params, params, ctx));
                probe.lap_exec(t);
                return result;
            }
        }
        if let Statement::Query(query) = &self.stmt {
            return self
                .db
                .execute_query_probed(&self.sql, query, params, probe, ctx);
        }
        let t = probe.phase();
        let result = self
            .db
            .execute_statement(&self.sql, &self.stmt, params, ctx);
        probe.lap_exec(t);
        ctx.record_exec(t);
        result
    }

    /// Execute and return rows.
    pub fn query(&self, params: &[Value]) -> Result<QueryResult> {
        self.execute(params)?.into_rows()
    }
}

/// Scope of a base table for DML binding: columns visible bare and
/// table-qualified, carrying their declared types.
fn table_scope(t: &Table) -> Scope {
    Scope::new(
        t.schema
            .columns
            .iter()
            .map(|c| ColLabel::new(Some(&t.name), &c.name).with_ty(c.ty))
            .collect(),
    )
}

/// Qualify unqualified column references with `table` (AST rewrite used for
/// `ON CONFLICT DO UPDATE` expressions and mirrored by the semantic
/// analyzer's upsert checks).
pub(crate) fn qualify_bare_columns(e: &mut Expr, table: &str) {
    match e {
        Expr::Column { qualifier, .. } => {
            if qualifier.is_none() {
                *qualifier = Some(table.to_string());
            }
        }
        Expr::Literal(..) | Expr::Param(..) => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            qualify_bare_columns(expr, table);
        }
        Expr::Binary { left, right, .. } => {
            qualify_bare_columns(left, table);
            qualify_bare_columns(right, table);
        }
        Expr::InList { expr, list, .. } => {
            qualify_bare_columns(expr, table);
            for i in list {
                qualify_bare_columns(i, table);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            qualify_bare_columns(expr, table);
            qualify_bare_columns(low, table);
            qualify_bare_columns(high, table);
        }
        Expr::Like { expr, pattern, .. } => {
            qualify_bare_columns(expr, table);
            qualify_bare_columns(pattern, table);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
            ..
        } => {
            if let Some(o) = operand {
                qualify_bare_columns(o, table);
            }
            for (w, th) in branches {
                qualify_bare_columns(w, table);
                qualify_bare_columns(th, table);
            }
            if let Some(el) = else_expr {
                qualify_bare_columns(el, table);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                qualify_bare_columns(a, table);
            }
        }
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                qualify_bare_columns(a, table);
            }
        }
        Expr::WindowRowNumber {
            partition_by,
            order_by,
            ..
        } => {
            for p in partition_by {
                qualify_bare_columns(p, table);
            }
            for oi in order_by {
                qualify_bare_columns(&mut oi.expr, table);
            }
        }
        // Subquery bodies have their own scopes.
        Expr::ScalarSubquery(..) | Expr::Exists { .. } => {}
        Expr::InSubquery { expr, .. } => qualify_bare_columns(expr, table),
    }
}

#[cfg(test)]
mod tests {
    use super::normalize_cache_key;

    #[test]
    fn cache_key_collapses_whitespace_and_keyword_case() {
        let a = normalize_cache_key("SELECT  n,\n\ts  FROM t\nWHERE n = ?  ORDER   BY n");
        let b = normalize_cache_key("select n, s from t where n = ? order by n");
        assert_eq!(a, b);
        assert_eq!(a, "select n, s from t where n = ? order by n");
    }

    #[test]
    fn cache_key_preserves_identifier_and_literal_case() {
        // Identifiers keep their case (it is significant in output column
        // names) and string literals are copied verbatim, including the
        // doubled-quote escape; only keywords fold.
        let k = normalize_cache_key("SELECT Col  AS Total FROM T WHERE s = 'TOK''x'");
        assert_eq!(k, "select Col as Total from T where s = 'TOK''x'");
    }

    #[test]
    fn cache_key_drops_leading_and_trailing_whitespace() {
        assert_eq!(normalize_cache_key("  SELECT 1  "), "select 1");
    }

    #[test]
    fn cache_key_distinguishes_different_literals() {
        assert_ne!(
            normalize_cache_key("SELECT * FROM t WHERE s = 'a'"),
            normalize_cache_key("SELECT * FROM t WHERE s = 'A'")
        );
    }
}
