//! SQL tokenizer.
//!
//! Produces a flat token stream. Keywords are recognized case-insensitively
//! and carried as their upper-case spelling; identifiers keep their original
//! case but compare case-insensitively downstream. String literals use single
//! quotes with `''` escaping; double-quoted identifiers are supported.

use crate::error::{EngineError, Result, Span};

/// A single lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword, upper-cased (`SELECT`, `FROM`, ...).
    Keyword(String),
    /// Bare or double-quoted identifier, original case preserved.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating point literal.
    Float(f64),
    /// Single-quoted string literal, unescaped.
    Str(String),
    /// Positional parameter `?` (1-based index assigned in lexing order) or
    /// explicit `?NNN`.
    Param(usize),
    // Punctuation / operators.
    Comma,
    Dot,
    Semicolon,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Concat, // ||
}

/// Words treated as keywords by the parser. Anything else is an identifier.
const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "LIMIT",
    "OFFSET",
    "AS",
    "AND",
    "OR",
    "NOT",
    "NULL",
    "IS",
    "IN",
    "LIKE",
    "BETWEEN",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "CAST",
    "CREATE",
    "TABLE",
    "INDEX",
    "DROP",
    "IF",
    "EXISTS",
    "INSERT",
    "INTO",
    "VALUES",
    "DELETE",
    "UPDATE",
    "SET",
    "ON",
    "CONFLICT",
    "DO",
    "NOTHING",
    "PRIMARY",
    "KEY",
    "UNIQUE",
    "JOIN",
    "INNER",
    "LEFT",
    "RIGHT",
    "OUTER",
    "CROSS",
    "UNION",
    "ALL",
    "DISTINCT",
    "WITH",
    "OVER",
    "PARTITION",
    "ASC",
    "DESC",
    "INTEGER",
    "INT",
    "BIGINT",
    "REAL",
    "DOUBLE",
    "FLOAT",
    "TEXT",
    "VARCHAR",
    "ROW_NUMBER",
    "RANK",
    "DENSE_RANK",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
    "TRUE",
    "FALSE",
    "EXCLUDED",
    "TEMP",
    "TEMPORARY",
    "PRECISION",
    "BEGIN",
    "COMMIT",
    "ROLLBACK",
    "TRANSACTION",
    "EXPLAIN",
    "ANALYZE",
];

pub(crate) fn is_keyword(word: &str) -> bool {
    KEYWORDS.iter().any(|k| k.eq_ignore_ascii_case(word))
}

/// Tokenize `sql` into a vector of tokens, discarding spans.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    Ok(tokenize_spanned(sql)?.0)
}

/// Tokenize `sql`, also returning the byte span of each token (parallel to
/// the token vector).
pub fn tokenize_spanned(sql: &str) -> Result<(Vec<Token>, Vec<Span>)> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut spans: Vec<Span> = Vec::new();
    let mut i = 0;
    let mut next_param = 1usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        let tok_start = i;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment.
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(EngineError::Lex {
                            message: "unterminated block comment".into(),
                            position: start,
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' if !bytes
                .get(i + 1)
                .map(|b| b.is_ascii_digit())
                .unwrap_or(false) =>
            {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::LtEq);
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::NotEq);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                tokens.push(Token::Concat);
                i += 2;
            }
            '?' => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i > start {
                    let idx: usize = sql[start..i].parse().map_err(|_| EngineError::Lex {
                        message: "invalid parameter index".into(),
                        position: start,
                    })?;
                    if idx == 0 {
                        return Err(EngineError::Lex {
                            message: "parameter indexes are 1-based".into(),
                            position: start,
                        });
                    }
                    tokens.push(Token::Param(idx));
                    next_param = next_param.max(idx + 1);
                } else {
                    tokens.push(Token::Param(next_param));
                    next_param += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(EngineError::Lex {
                            message: "unterminated string literal".into(),
                            position: start,
                        });
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Push the full UTF-8 character.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(&sql[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                tokens.push(Token::Str(s));
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(EngineError::Lex {
                            message: "unterminated quoted identifier".into(),
                            position: start,
                        });
                    }
                    if bytes[i] == b'"' {
                        if bytes.get(i + 1) == Some(&b'"') {
                            s.push('"');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(&sql[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &sql[start..i];
                if is_float {
                    let v: f64 = text.parse().map_err(|_| EngineError::Lex {
                        message: format!("invalid float literal '{text}'"),
                        position: start,
                    })?;
                    tokens.push(Token::Float(v));
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => tokens.push(Token::Int(v)),
                        Err(_) => {
                            let v: f64 = text.parse().map_err(|_| EngineError::Lex {
                                message: format!("invalid numeric literal '{text}'"),
                                position: start,
                            })?;
                            tokens.push(Token::Float(v));
                        }
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &sql[start..i];
                if is_keyword(word) {
                    tokens.push(Token::Keyword(word.to_ascii_uppercase()));
                } else {
                    tokens.push(Token::Ident(word.to_string()));
                }
            }
            other => {
                return Err(EngineError::Lex {
                    message: format!("unexpected character '{other}'"),
                    position: i,
                });
            }
        }
        // Any tokens pushed by this iteration share the iteration's span.
        while spans.len() < tokens.len() {
            spans.push(Span::new(tok_start, i));
        }
    }
    Ok((tokens, spans))
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_basic_select() {
        let toks = tokenize("SELECT a, b FROM t WHERE a = 1").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert!(toks.contains(&Token::Eq));
        assert_eq!(*toks.last().unwrap(), Token::Int(1));
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let toks = tokenize("SELECT 'it''s'").unwrap();
        assert_eq!(toks[1], Token::Str("it's".into()));
    }

    #[test]
    fn lexes_concat_and_ne() {
        let toks = tokenize("a || b <> c != d").unwrap();
        assert_eq!(toks[1], Token::Concat);
        assert_eq!(toks[3], Token::NotEq);
        assert_eq!(toks[5], Token::NotEq);
    }

    #[test]
    fn lexes_floats_and_scientific() {
        let toks = tokenize("1.5 2e3 7 0.25").unwrap();
        assert_eq!(toks[0], Token::Float(1.5));
        assert_eq!(toks[1], Token::Float(2000.0));
        assert_eq!(toks[2], Token::Int(7));
        assert_eq!(toks[3], Token::Float(0.25));
    }

    #[test]
    fn positional_params_autonumber() {
        let toks = tokenize("? ?5 ?").unwrap();
        assert_eq!(
            toks,
            vec![Token::Param(1), Token::Param(5), Token::Param(6)]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT 1 -- trailing\n + /* mid */ 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Int(1),
                Token::Plus,
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(
            tokenize("SELECT 'oops"),
            Err(EngineError::Lex { .. })
        ));
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = tokenize("select col").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("col".into()));
    }

    #[test]
    fn quoted_identifier() {
        let toks = tokenize("SELECT \"weird name\"").unwrap();
        assert_eq!(toks[1], Token::Ident("weird name".into()));
    }

    #[test]
    fn spans_cover_each_token() {
        let sql = "SELECT abc + 'x''y'";
        let (toks, spans) = tokenize_spanned(sql).unwrap();
        assert_eq!(toks.len(), spans.len());
        assert_eq!(&sql[spans[0].range()], "SELECT");
        assert_eq!(&sql[spans[1].range()], "abc");
        assert_eq!(&sql[spans[2].range()], "+");
        assert_eq!(&sql[spans[3].range()], "'x''y'");
    }
}
