//! Hierarchical statement tracing with wait-state attribution.
//!
//! A [`TraceCtx`] records one statement's causal span tree: admission queue
//! wait, parse / sema / plan phases, per-operator execution (derived from the
//! same `OpStats` tree that `EXPLAIN ANALYZE` renders, so the two can never
//! disagree), and WAL activity (append, retry backoff, group-commit fsync
//! wait with leader/follower attribution). Each span carries a name, a parent
//! span id, a start offset and duration in microseconds, an optional wait
//! class, an optional row count, and a small set of typed attributes.
//!
//! Capture is governed by [`TraceSampling`] (`EngineConfig::trace_sampling`):
//! off by default, so the untraced serving path performs **zero** additional
//! clock reads. When sampling is on, every statement records tentatively and
//! the keep decision happens at finish: errors and statements slower than
//! `slow_query_threshold` are always kept, everything else passes through a
//! deterministic seeded sampler keyed by statement id. Kept traces land in a
//! bounded ring inside [`Telemetry`](crate::Telemetry) and are queryable as
//! `sys.trace_spans` (joinable to `sys.query_log` on `statement_id`);
//! wait-time rollups are always on (contended paths only) and queryable as
//! `sys.wait_events`.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::exec::OpStats;

/// Sampling policy for per-statement trace capture.
///
/// `Off` (the default) records nothing and adds no clock reads to any
/// statement path. `On` tentatively captures every statement; at finish,
/// errors and slow statements are always kept, and everything else is kept
/// with probability `rate` decided by a deterministic sampler seeded with
/// `seed` and keyed by the statement id (so a given id's keep decision is
/// reproducible across runs).
#[derive(Debug, Clone, Copy, Default)]
pub enum TraceSampling {
    /// No trace capture (release default).
    #[default]
    Off,
    /// Tentative capture for every statement; keep errors + slow always,
    /// others with probability `rate` under a seeded deterministic sampler.
    On { rate: f64, seed: u64 },
}

impl TraceSampling {
    /// Whether statements should tentatively capture spans at all.
    pub fn is_on(self) -> bool {
        matches!(self, TraceSampling::On { .. })
    }

    /// The keep decision for a finished statement. Errors and slow
    /// statements are always kept; the rest go through the seeded sampler.
    pub fn keep(self, statement_id: u64, error_or_slow: bool) -> bool {
        match self {
            TraceSampling::Off => false,
            TraceSampling::On { rate, seed } => {
                if error_or_slow {
                    return true;
                }
                if rate >= 1.0 {
                    return true;
                }
                if rate <= 0.0 {
                    return false;
                }
                // 53 uniform bits of splitmix64(seed ^ id) in [0, 1).
                let u = (splitmix64(seed ^ statement_id) >> 11) as f64 / (1u64 << 53) as f64;
                u < rate
            }
        }
    }
}

/// SplitMix64: a tiny, high-quality 64-bit mixer; deterministic sampling
/// without any shared mutable PRNG state.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Wait classes rolled up into `sys.wait_events`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitClass {
    /// Time queued behind the admission gate before running.
    Admission,
    /// Time waiting on a WAL fsync (group-commit leader, follower, or an
    /// inline non-group fsync).
    Fsync,
    /// Backoff sleeps between WAL write retries.
    WalRetry,
    /// Coordinator time blocked waiting on the worker pool.
    WorkerIdle,
}

impl WaitClass {
    pub fn as_str(self) -> &'static str {
        match self {
            WaitClass::Admission => "admission",
            WaitClass::Fsync => "fsync",
            WaitClass::WalRetry => "wal_retry",
            WaitClass::WorkerIdle => "worker_idle",
        }
    }
}

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    Int(i64),
    Text(&'static str),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Text(v) => write!(f, "{v}"),
        }
    }
}

/// One recorded span. `start_us` is the offset from the statement's trace
/// origin; ids are unique within one statement with the root at
/// [`ROOT_SPAN`] and the execution phase pre-reserved at [`EXEC_SPAN`].
#[derive(Debug, Clone)]
pub struct SpanRec {
    pub id: u32,
    /// Parent span id (`None` only for the root).
    pub parent: Option<u32>,
    pub name: String,
    pub start_us: u64,
    pub duration_us: u64,
    pub wait_class: Option<WaitClass>,
    /// Output rows for execution-operator spans.
    pub rows: Option<u64>,
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRec {
    /// Attributes rendered as `k=v` pairs separated by spaces (the
    /// `sys.trace_spans.attrs` column).
    pub fn attrs_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.attrs {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
        }
        out
    }
}

/// Id of the statement root span (duration = whole statement).
pub const ROOT_SPAN: u32 = 0;
/// Pre-reserved id of the execution-phase span, so WAL spans recorded while
/// the executor runs can parent under it before it is itself recorded.
pub const EXEC_SPAN: u32 = 1;

/// Per-statement span recorder. Created once per traced statement (before
/// admission, so queue wait is visible) and finished after the query-log
/// entry is written. Span recording takes a short mutex per span — traced
/// statements are the sampled minority, never the untraced hot path.
#[derive(Debug)]
pub struct TraceCtx {
    origin: Instant,
    next_id: AtomicU32,
    spans: Mutex<Vec<SpanRec>>,
}

impl Default for TraceCtx {
    fn default() -> TraceCtx {
        TraceCtx::new()
    }
}

impl TraceCtx {
    pub fn new() -> TraceCtx {
        TraceCtx {
            origin: Instant::now(),
            next_id: AtomicU32::new(EXEC_SPAN + 1),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// The trace origin; span start offsets are measured from here.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Microsecond offset of `t` from the trace origin.
    pub fn offset_us(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.origin)
            .map_or(0, |d| d.as_micros() as u64)
    }

    /// Allocate a fresh span id (for callers that need the id before the
    /// span body is known).
    pub fn alloc_id(&self) -> u32 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    pub fn record(&self, span: SpanRec) {
        self.spans.lock().push(span);
    }

    /// Record a span that started at `from` and ends now.
    pub fn record_since(
        &self,
        parent: u32,
        name: impl Into<String>,
        from: Instant,
        wait_class: Option<WaitClass>,
        attrs: Vec<(&'static str, AttrValue)>,
    ) -> u32 {
        let id = self.alloc_id();
        self.record(SpanRec {
            id,
            parent: Some(parent),
            name: name.into(),
            start_us: self.offset_us(from),
            duration_us: from.elapsed().as_micros() as u64,
            wait_class,
            rows: None,
            attrs,
        });
        id
    }

    /// Record the pre-reserved execution-phase span ([`EXEC_SPAN`]) covering
    /// `from`..now. No-op when the span was already recorded: an inner
    /// executor path (plan execution) records a tight exec span first, and
    /// outer statement drivers only fill it in for paths (DML, DDL) that
    /// never reached the executor-side recording.
    pub fn record_exec(&self, from: Instant, attrs: Vec<(&'static str, AttrValue)>) {
        let mut spans = self.spans.lock();
        if spans.iter().any(|s| s.id == EXEC_SPAN) {
            return;
        }
        spans.push(SpanRec {
            id: EXEC_SPAN,
            parent: Some(ROOT_SPAN),
            name: "exec".into(),
            start_us: self.offset_us(from),
            duration_us: from.elapsed().as_micros() as u64,
            wait_class: None,
            rows: None,
            attrs,
        });
    }

    /// Record the execution-operator subtree from an `EXPLAIN ANALYZE`
    /// stats tree, parented under the pre-reserved exec span. Row counts
    /// are copied verbatim from the stats tree, so `sys.trace_spans` and
    /// `EXPLAIN ANALYZE` agree by construction. Operator start offsets are
    /// derived (parent start + preceding siblings' durations): `OpStats`
    /// records durations only, and operator spans nest, so the derived
    /// offsets always stay inside the parent interval.
    pub fn record_op_tree(&self, stats: &OpStats, exec_start_us: u64) {
        self.record_op_node(stats, EXEC_SPAN, exec_start_us);
    }

    fn record_op_node(&self, stats: &OpStats, parent: u32, start_us: u64) {
        let id = self.alloc_id();
        let mut attrs = vec![("rows_in", AttrValue::Int(stats.rows_in as i64))];
        if stats.workers > 1 {
            attrs.push(("workers", AttrValue::Int(stats.workers as i64)));
            attrs.push(("morsels", AttrValue::Int(stats.morsels as i64)));
        }
        if let Some(mode) = crate::exec::mode_of_label(&stats.label) {
            attrs.push(("mode", AttrValue::Text(mode)));
        }
        if stats.mem_bytes > 0 {
            attrs.push(("peak_mem_bytes", AttrValue::Int(stats.mem_bytes as i64)));
        }
        self.record(SpanRec {
            id,
            parent: Some(parent),
            name: op_span_name(&stats.label),
            start_us,
            duration_us: stats.elapsed.as_micros() as u64,
            wait_class: None,
            rows: Some(stats.rows_out as u64),
            attrs,
        });
        let mut child_start = start_us;
        for child in &stats.children {
            self.record_op_node(child, id, child_start);
            child_start += child.elapsed.as_micros() as u64;
        }
    }

    /// Finish the trace: record the root statement span and return all
    /// spans, root first, children in recording order.
    pub fn finish(self, name: impl Into<String>, total_us: u64) -> Vec<SpanRec> {
        let mut spans = self.spans.into_inner();
        spans.insert(
            0,
            SpanRec {
                id: ROOT_SPAN,
                parent: None,
                name: name.into(),
                start_us: 0,
                duration_us: total_us,
                wait_class: None,
                rows: None,
                attrs: Vec::new(),
            },
        );
        spans
    }

    /// Snapshot of the spans recorded so far (no root span).
    pub fn spans(&self) -> Vec<SpanRec> {
        self.spans.lock().clone()
    }
}

/// Span name of an operator: the `EXPLAIN` label up to its detail bracket /
/// mode suffix (details travel as typed attributes instead).
fn op_span_name(label: &str) -> String {
    label.split([' ', '[']).next().unwrap_or(label).to_string()
}

/// Borrowed handle threaded into subsystems (WAL) that record spans under a
/// fixed parent while a statement executes.
#[derive(Clone, Copy)]
pub struct TraceScope<'a> {
    pub ctx: &'a TraceCtx,
    pub parent: u32,
}

impl TraceScope<'_> {
    /// Record a wait span that started at `from` and ends now.
    pub fn record_wait(
        &self,
        name: &'static str,
        wait_class: WaitClass,
        from: Instant,
        attrs: Vec<(&'static str, AttrValue)>,
    ) {
        self.ctx
            .record_since(self.parent, name, from, Some(wait_class), attrs);
    }
}

/// One kept statement trace, stored in the bounded ring inside `Telemetry`
/// and surfaced as `sys.trace_spans`.
#[derive(Debug, Clone)]
pub struct StatementTrace {
    pub statement_id: u64,
    pub spans: Vec<SpanRec>,
}

/// Wait totals extracted from one statement's spans, backfilled into the
/// `sys.query_log` columns `queue_wait_us` / `fsync_wait_us` / `retry_count`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitTotals {
    pub queue_wait_us: u64,
    pub fsync_wait_us: u64,
    pub retry_count: u64,
}

impl WaitTotals {
    pub fn from_spans(spans: &[SpanRec]) -> WaitTotals {
        let mut totals = WaitTotals::default();
        for span in spans {
            match span.wait_class {
                Some(WaitClass::Admission) => totals.queue_wait_us += span.duration_us,
                Some(WaitClass::Fsync) => totals.fsync_wait_us += span.duration_us,
                Some(WaitClass::WalRetry) => totals.retry_count += 1,
                _ => {}
            }
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic_and_respects_rate_bounds() {
        let on = TraceSampling::On {
            rate: 0.5,
            seed: 42,
        };
        for id in 0..64u64 {
            assert_eq!(on.keep(id, false), on.keep(id, false));
            assert!(on.keep(id, true), "errors/slow are always kept");
        }
        let kept = (0..1000u64).filter(|&id| on.keep(id, false)).count();
        assert!((300..=700).contains(&kept), "kept = {kept}");
        assert!(!TraceSampling::Off.keep(7, true));
        let always = TraceSampling::On { rate: 1.0, seed: 0 };
        assert!(always.keep(7, false));
        let never = TraceSampling::On { rate: 0.0, seed: 0 };
        assert!(!never.keep(7, false));
        assert!(never.keep(7, true));
    }

    #[test]
    fn wait_totals_fold_by_class() {
        let ctx = TraceCtx::new();
        let from = Instant::now();
        let scope = TraceScope {
            ctx: &ctx,
            parent: EXEC_SPAN,
        };
        scope.record_wait("admission.queue", WaitClass::Admission, from, Vec::new());
        scope.record_wait("wal.fsync_wait", WaitClass::Fsync, from, Vec::new());
        scope.record_wait("wal.retry", WaitClass::WalRetry, from, Vec::new());
        scope.record_wait("wal.retry", WaitClass::WalRetry, from, Vec::new());
        let spans = ctx.finish("statement", 10);
        let totals = WaitTotals::from_spans(&spans);
        assert_eq!(totals.retry_count, 2);
        assert_eq!(spans[0].id, ROOT_SPAN);
        assert_eq!(spans[0].parent, None);
    }

    #[test]
    fn attrs_render_as_pairs() {
        let span = SpanRec {
            id: 2,
            parent: Some(ROOT_SPAN),
            name: "plan".into(),
            start_us: 0,
            duration_us: 5,
            wait_class: None,
            rows: None,
            attrs: vec![
                ("cache", AttrValue::Text("hit")),
                ("nodes", AttrValue::Int(3)),
            ],
        };
        assert_eq!(span.attrs_text(), "cache=hit nodes=3");
    }
}
