//! Columnar chunk storage derived from row storage.
//!
//! Tables remain row-stores (`Arc<Vec<Row>>` is the durable, snapshotted
//! representation); this module maintains a *derived* columnar image of the
//! same data for the vectorized executor: fixed-size [`ColumnChunk`]s of
//! typed column vectors with null masks, dictionary-encoding low-cardinality
//! TEXT columns (token strings in the BornSQL corpus shape). Chunks are
//! never written to snapshots or the WAL — recovery rebuilds them lazily
//! from the replayed rows.
//!
//! Consistency is enforced structurally rather than by validation: a table's
//! [`ChunkSlot`] is only ever shared between table values (and plan
//! snapshots) holding *identical* rows. Every mutation of `rows` installs a
//! fresh slot — the append path carries the already-built chunks forward
//! incrementally, every other mutation resets to an empty slot and lets the
//! next vectorized query rebuild. A stale plan snapshot therefore keeps a
//! consistent (rows, chunks) pair alive rather than observing a torn one.
//!
//! Exactness invariant: reconstructing any value from its chunk yields a
//! `Value` *bit-identical* to the stored row value (`Int(2)` never comes
//! back as `Float(2.0)`), so vectorized and row execution are exchangeable.
//! A column only takes a typed representation when every non-null value is
//! exactly that variant; mixed columns fall back to a plain `Value` vector.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::value::{Row, Value};

/// Rows per chunk. Matches one executor morsel: the vectorized pipeline
/// hands whole chunks to workers, so a morsel *is* a chunk.
pub const CHUNK_ROWS: usize = 1024;

/// Maximum distinct strings a per-chunk dictionary may hold before the
/// column falls back to plain values (low-cardinality columns — class
/// labels, token vocabularies sliced per chunk — stay well under this).
const DICT_MAX_VALUES: usize = 256;

/// A per-chunk null mask: bit set = NULL at that row offset.
#[derive(Debug, Clone, Default)]
pub struct NullMask {
    words: Vec<u64>,
    set: usize,
}

impl NullMask {
    fn push(&mut self, len: usize, null: bool) {
        let word = len / 64;
        if word >= self.words.len() {
            self.words.push(0);
        }
        if null {
            self.words[word] |= 1 << (len % 64);
            self.set += 1;
        }
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w >> (i % 64) & 1 == 1)
    }

    pub fn count(&self) -> usize {
        self.set
    }
}

/// Typed storage for one column of one chunk. Typed variants keep a
/// placeholder (0 / 0.0 / code 0) at null offsets; the null mask is
/// authoritative.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Every non-null value is `Value::Int`.
    Int(Vec<i64>),
    /// Every non-null value is `Value::Float`.
    Float(Vec<f64>),
    /// Every non-null value is `Value::Str` and the chunk-local cardinality
    /// stayed within [`DICT_MAX_VALUES`]: rows hold codes into `values`
    /// (first-occurrence order); `index` is the reverse map for appends.
    Dict {
        codes: Vec<u32>,
        values: Vec<Arc<str>>,
        index: HashMap<Arc<str>, u32>,
    },
    /// Mixed / high-cardinality fallback: the values themselves.
    Values(Vec<Value>),
}

/// One column of one chunk: typed data plus the null mask.
#[derive(Debug, Clone)]
pub struct ColVec {
    pub data: ColumnData,
    pub nulls: NullMask,
    non_null: usize,
}

impl ColVec {
    fn new() -> ColVec {
        ColVec {
            data: ColumnData::Values(Vec::new()),
            nulls: NullMask::default(),
            non_null: 0,
        }
    }

    /// Append one value, promoting the representation as needed: the first
    /// non-null value picks the typed layout; a later value of a different
    /// variant (or a dictionary overflow) demotes the column to `Values`.
    fn push(&mut self, len: usize, v: &Value) {
        self.nulls.push(len, v.is_null());
        if v.is_null() {
            match &mut self.data {
                ColumnData::Int(xs) => xs.push(0),
                ColumnData::Float(xs) => xs.push(0.0),
                ColumnData::Dict { codes, .. } => codes.push(0),
                ColumnData::Values(xs) => xs.push(Value::Null),
            }
            return;
        }
        if self.non_null == 0 {
            // All prior values (if any) were NULL: adopt this value's typed
            // layout, backfilling placeholders for the nulls.
            self.data = match v {
                Value::Int(_) => ColumnData::Int(vec![0; len]),
                Value::Float(_) => ColumnData::Float(vec![0.0; len]),
                Value::Str(_) => ColumnData::Dict {
                    codes: vec![0; len],
                    values: Vec::new(),
                    index: HashMap::new(),
                },
                Value::Null => unreachable!("null handled above"),
            };
        }
        self.non_null += 1;
        match (&mut self.data, v) {
            (ColumnData::Int(xs), Value::Int(i)) => xs.push(*i),
            (ColumnData::Float(xs), Value::Float(f)) => xs.push(*f),
            (
                ColumnData::Dict {
                    codes,
                    values,
                    index,
                },
                Value::Str(s),
            ) => match index.get(s.as_ref()) {
                Some(&code) => codes.push(code),
                None if values.len() < DICT_MAX_VALUES => {
                    let code = values.len() as u32;
                    values.push(Arc::clone(s));
                    index.insert(Arc::clone(s), code);
                    codes.push(code);
                }
                None => {
                    self.demote(len);
                    match &mut self.data {
                        ColumnData::Values(xs) => xs.push(v.clone()),
                        _ => unreachable!("demote yields Values"),
                    }
                }
            },
            (ColumnData::Values(xs), _) => xs.push(v.clone()),
            _ => {
                // Variant mismatch: demote to plain values, then push.
                self.demote(len);
                match &mut self.data {
                    ColumnData::Values(xs) => xs.push(v.clone()),
                    _ => unreachable!("demote yields Values"),
                }
            }
        }
    }

    /// Rebuild this column as `Values`, reconstructing the `len` values
    /// stored so far.
    fn demote(&mut self, len: usize) {
        let xs: Vec<Value> = (0..len).map(|i| self.value_at(i)).collect();
        self.data = ColumnData::Values(xs);
    }

    /// Reconstruct the exact stored `Value` at row offset `i`.
    #[inline]
    pub fn value_at(&self, i: usize) -> Value {
        if self.nulls.get(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(xs) => Value::Int(xs[i]),
            ColumnData::Float(xs) => Value::Float(xs[i]),
            ColumnData::Dict { codes, values, .. } => {
                Value::Str(Arc::clone(&values[codes[i] as usize]))
            }
            ColumnData::Values(xs) => xs[i].clone(),
        }
    }

    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.get(i)
    }

    pub fn is_dict(&self) -> bool {
        matches!(self.data, ColumnData::Dict { .. })
    }
}

/// A fixed-capacity run of rows stored column-wise.
#[derive(Debug, Clone)]
pub struct ColumnChunk {
    len: usize,
    columns: Vec<ColVec>,
}

impl ColumnChunk {
    fn new(width: usize) -> ColumnChunk {
        ColumnChunk {
            len: 0,
            columns: (0..width).map(|_| ColVec::new()).collect(),
        }
    }

    fn push_row(&mut self, row: &Row) {
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(self.len, v);
        }
        self.len += 1;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn width(&self) -> usize {
        self.columns.len()
    }

    #[inline]
    pub fn column(&self, c: usize) -> &ColVec {
        &self.columns[c]
    }

    /// Reconstruct the exact stored value at (row offset, column).
    #[inline]
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        self.columns[col].value_at(row)
    }
}

/// The chunked image of one table snapshot: all chunks plus summary stats.
#[derive(Debug, Clone)]
pub struct ChunkedTable {
    chunks: Vec<Arc<ColumnChunk>>,
    width: usize,
    rows: usize,
}

impl ChunkedTable {
    /// Build the columnar image of `rows` (one pass, chunk at a time).
    pub fn build(rows: &[Row], width: usize) -> ChunkedTable {
        let mut chunks = Vec::with_capacity(rows.len().div_ceil(CHUNK_ROWS));
        for slice in rows.chunks(CHUNK_ROWS) {
            let mut chunk = ColumnChunk::new(width);
            for row in slice {
                chunk.push_row(row);
            }
            chunks.push(Arc::new(chunk));
        }
        ChunkedTable {
            chunks,
            width,
            rows: rows.len(),
        }
    }

    /// A copy with `row` appended: the last chunk is extended copy-on-write
    /// (or a new chunk is started), every full chunk is shared untouched.
    fn appended(&self, row: &Row) -> ChunkedTable {
        let mut chunks = self.chunks.clone();
        match chunks.last_mut() {
            Some(last) if last.len() < CHUNK_ROWS => Arc::make_mut(last).push_row(row),
            _ => {
                let mut chunk = ColumnChunk::new(self.width);
                chunk.push_row(row);
                chunks.push(Arc::new(chunk));
            }
        }
        ChunkedTable {
            chunks,
            width: self.width,
            rows: self.rows + 1,
        }
    }

    pub fn chunks(&self) -> &[Arc<ColumnChunk>] {
        &self.chunks
    }

    pub fn row_count(&self) -> usize {
        self.rows
    }

    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Number of table columns dictionary-encoded in at least one chunk.
    pub fn dict_columns(&self) -> usize {
        (0..self.width)
            .filter(|&c| self.chunks.iter().any(|ch| ch.column(c).is_dict()))
            .count()
    }
}

/// A table's lazily built chunk cache.
///
/// Cloning shares the cache (tables clone into plan snapshots constantly);
/// the sharing discipline in the module docs — fresh slot on every rows
/// mutation — is what keeps a shared slot consistent with the rows Arc it
/// was captured alongside.
#[derive(Debug, Clone, Default)]
pub struct ChunkSlot(Arc<Mutex<Option<Arc<ChunkedTable>>>>);

impl ChunkSlot {
    pub fn empty() -> ChunkSlot {
        ChunkSlot::default()
    }

    /// The built chunks, building from `rows` on first use. Callers must
    /// pass the rows snapshot this slot was captured with.
    pub fn get_or_build(&self, rows: &[Row], width: usize) -> Arc<ChunkedTable> {
        let mut slot = self.0.lock();
        match &*slot {
            Some(built) => Arc::clone(built),
            None => {
                let built = Arc::new(ChunkedTable::build(rows, width));
                *slot = Some(Arc::clone(&built));
                built
            }
        }
    }

    /// The built chunks, if any (no build is triggered — `sys.tables` and
    /// metrics report the *observed* state, demonstrating laziness).
    pub fn peek(&self) -> Option<Arc<ChunkedTable>> {
        self.0.lock().clone()
    }

    /// The slot for a table whose rows just gained `row` at the end: carries
    /// built chunks forward incrementally, stays lazy when unbuilt. Always a
    /// *fresh* slot — the old one keeps serving the old rows snapshot.
    pub fn appended(&self, row: &Row) -> ChunkSlot {
        match self.peek() {
            Some(built) => ChunkSlot(Arc::new(Mutex::new(Some(Arc::new(built.appended(row)))))),
            None => ChunkSlot::empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rows: &[Row], width: usize) -> ChunkedTable {
        ChunkedTable::build(rows, width)
    }

    #[test]
    fn typed_columns_round_trip_exactly() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::Float(0.5), Value::text("a")],
            vec![Value::Null, Value::Null, Value::Null],
            vec![Value::Int(-3), Value::Float(2.0), Value::text("b")],
            vec![Value::Int(7), Value::Float(-1.25), Value::text("a")],
        ];
        let ct = v(&rows, 3);
        assert_eq!(ct.chunk_count(), 1);
        assert_eq!(ct.dict_columns(), 1);
        let chunk = &ct.chunks()[0];
        assert!(matches!(chunk.column(0).data, ColumnData::Int(_)));
        assert!(matches!(chunk.column(1).data, ColumnData::Float(_)));
        assert!(chunk.column(2).is_dict());
        for (i, row) in rows.iter().enumerate() {
            for (c, val) in row.iter().enumerate() {
                let got = chunk.value_at(i, c);
                // PartialEq equates Int(2) and Float(2.0); pin the variant too.
                assert_eq!(&got, val);
                assert_eq!(got.data_type(), val.data_type(), "row {i} col {c}");
            }
        }
    }

    #[test]
    fn mixed_column_demotes_to_values() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(1)],
            vec![Value::Float(2.5)],
            vec![Value::text("x")],
        ];
        let ct = v(&rows, 1);
        let col = ct.chunks()[0].column(0);
        assert!(matches!(col.data, ColumnData::Values(_)));
        assert_eq!(col.value_at(0), Value::Int(1));
        assert_eq!(col.value_at(0).data_type(), crate::value::DataType::Integer);
        assert_eq!(col.value_at(1), Value::Float(2.5));
        assert_eq!(col.value_at(2), Value::text("x"));
    }

    #[test]
    fn all_null_prefix_adopts_first_typed_value() {
        let rows: Vec<Row> = vec![vec![Value::Null], vec![Value::Null], vec![Value::Int(9)]];
        let ct = v(&rows, 1);
        let col = ct.chunks()[0].column(0);
        assert!(matches!(col.data, ColumnData::Int(_)));
        assert!(col.is_null(0) && col.is_null(1));
        assert_eq!(col.value_at(2), Value::Int(9));
        assert_eq!(col.nulls.count(), 2);
    }

    #[test]
    fn dictionary_overflow_falls_back() {
        let rows: Vec<Row> = (0..DICT_MAX_VALUES as i64 + 10)
            .map(|i| vec![Value::text(format!("tok{i}"))])
            .collect();
        let ct = v(&rows, 1);
        let col = ct.chunks()[0].column(0);
        assert!(matches!(col.data, ColumnData::Values(_)));
        assert_eq!(col.value_at(3), Value::text("tok3"));
    }

    #[test]
    fn chunks_split_at_capacity_and_appends_extend() {
        let rows: Vec<Row> = (0..CHUNK_ROWS as i64 + 5)
            .map(|i| vec![Value::Int(i)])
            .collect();
        let ct = v(&rows, 1);
        assert_eq!(ct.chunk_count(), 2);
        assert_eq!(ct.chunks()[0].len(), CHUNK_ROWS);
        assert_eq!(ct.chunks()[1].len(), 5);

        let appended = ct.appended(&vec![Value::Int(999)]);
        assert_eq!(appended.row_count(), CHUNK_ROWS + 6);
        assert_eq!(appended.chunks()[1].len(), 6);
        assert_eq!(appended.chunks()[1].value_at(5, 0), Value::Int(999));
        // The original is untouched and the full chunk is shared, not copied.
        assert_eq!(ct.chunks()[1].len(), 5);
        assert!(Arc::ptr_eq(&ct.chunks()[0], &appended.chunks()[0]));
    }

    #[test]
    fn slot_builds_lazily_and_append_carries_forward() {
        let rows: Vec<Row> = (0..10).map(|i| vec![Value::Int(i)]).collect();
        let slot = ChunkSlot::empty();
        assert!(slot.peek().is_none());
        // Unbuilt slots stay lazy across appends.
        assert!(slot.appended(&vec![Value::Int(10)]).peek().is_none());

        let built = slot.get_or_build(&rows, 1);
        assert_eq!(built.row_count(), 10);
        assert!(Arc::ptr_eq(&built, &slot.get_or_build(&rows, 1)));

        let next = slot.appended(&vec![Value::Int(10)]);
        let carried = next.peek().expect("built state carried forward");
        assert_eq!(carried.row_count(), 11);
        assert_eq!(carried.chunks()[0].value_at(10, 0), Value::Int(10));
        // The original slot still serves the 10-row snapshot.
        assert_eq!(slot.peek().unwrap().row_count(), 10);
    }
}
