//! Multinomial logistic regression trained by mini-batch SGD — the stand-in
//! for MADlib's `madlib.logregr_train`.

use crate::DenseClassifier;

/// Softmax regression with L2 regularization.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Per-class weight vectors (n_classes × d) plus bias at the end.
    weights: Vec<Vec<f64>>,
    pub epochs: usize,
    pub learning_rate: f64,
    pub l2: f64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression {
            weights: Vec::new(),
            epochs: 30,
            learning_rate: 0.1,
            l2: 1e-4,
        }
    }
}

impl LogisticRegression {
    pub fn new(epochs: usize, learning_rate: f64, l2: f64) -> Self {
        LogisticRegression {
            weights: Vec::new(),
            epochs,
            learning_rate,
            l2,
        }
    }

    fn scores(&self, x: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .map(|w| {
                let d = x.len();
                let mut s = w[d]; // bias
                for i in 0..d {
                    if x[i] != 0.0 {
                        s += w[i] * x[i];
                    }
                }
                s
            })
            .collect()
    }

    /// Class probabilities via softmax.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut scores = self.scores(x);
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut total = 0.0;
        for s in &mut scores {
            *s = (*s - max).exp();
            total += *s;
        }
        for s in &mut scores {
            *s /= total;
        }
        scores
    }
}

impl DenseClassifier for LogisticRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) {
        assert_eq!(x.len(), y.len());
        let d = x.first().map(|r| r.len()).unwrap_or(0);
        self.weights = vec![vec![0.0; d + 1]; n_classes];
        let n = x.len() as f64;
        for epoch in 0..self.epochs {
            // Simple learning-rate decay.
            let lr = self.learning_rate / (1.0 + epoch as f64 * 0.1);
            for (row, &label) in x.iter().zip(y) {
                let proba = self.predict_proba(row);
                for (c, w) in self.weights.iter_mut().enumerate() {
                    let err = proba[c] - if c == label { 1.0 } else { 0.0 };
                    for i in 0..d {
                        if row[i] != 0.0 {
                            w[i] -= lr * (err * row[i] + self.l2 * w[i] / n);
                        }
                    }
                    w[d] -= lr * err;
                }
            }
        }
    }

    fn predict_row(&self, x: &[f64]) -> usize {
        let scores = self.scores(x);
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let t = i as f64 / 50.0;
            x.push(vec![1.0 + t, 0.0]);
            y.push(0);
            x.push(vec![0.0, 1.0 + t]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = linearly_separable();
        let mut clf = LogisticRegression::default();
        clf.fit(&x, &y, 2);
        let preds = clf.predict(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = linearly_separable();
        let mut clf = LogisticRegression::default();
        clf.fit(&x, &y, 2);
        let p = clf.predict_proba(&[1.0, 0.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1]);
    }

    #[test]
    fn three_class_problem() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..40 {
            x.push(vec![1.0, 0.0, 0.0]);
            y.push(0);
            x.push(vec![0.0, 1.0, 0.0]);
            y.push(1);
            x.push(vec![0.0, 0.0, 1.0]);
            y.push(2);
        }
        let mut clf = LogisticRegression::default();
        clf.fit(&x, &y, 3);
        assert_eq!(clf.predict_row(&[1.0, 0.0, 0.0]), 0);
        assert_eq!(clf.predict_row(&[0.0, 1.0, 0.0]), 1);
        assert_eq!(clf.predict_row(&[0.0, 0.0, 1.0]), 2);
    }
}
