//! Multinomial Naive Bayes with Laplace smoothing — MADlib also ships this
//! (`madlib.create_nb_prepared_data_tables`), and it is the classic
//! generative comparator for the Born classifier on text (the NeurIPS
//! paper benchmarks against it). Listed as an extension baseline in
//! DESIGN.md.

use crate::DenseClassifier;

/// Multinomial NB: `log P(k | x) ∝ log prior_k + Σ_j x_j · log θ_jk`.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    /// Per-class log priors.
    log_prior: Vec<f64>,
    /// Per-class, per-feature log likelihoods (n_classes × d).
    log_theta: Vec<Vec<f64>>,
    /// Laplace smoothing pseudo-count.
    pub alpha: f64,
}

impl Default for NaiveBayes {
    fn default() -> Self {
        NaiveBayes {
            log_prior: Vec::new(),
            log_theta: Vec::new(),
            alpha: 1.0,
        }
    }
}

impl NaiveBayes {
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "smoothing must be positive");
        NaiveBayes {
            log_prior: Vec::new(),
            log_theta: Vec::new(),
            alpha,
        }
    }

    /// Per-class joint log scores for a row.
    pub fn log_scores(&self, x: &[f64]) -> Vec<f64> {
        self.log_theta
            .iter()
            .zip(&self.log_prior)
            .map(|(theta, prior)| {
                let mut s = *prior;
                for (i, &xi) in x.iter().enumerate() {
                    if xi != 0.0 {
                        s += xi * theta[i];
                    }
                }
                s
            })
            .collect()
    }
}

impl DenseClassifier for NaiveBayes {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) {
        assert_eq!(x.len(), y.len());
        let d = x.first().map(|r| r.len()).unwrap_or(0);
        let mut class_counts = vec![0usize; n_classes];
        let mut feature_totals = vec![vec![0.0f64; d]; n_classes];
        for (row, &label) in x.iter().zip(y) {
            class_counts[label] += 1;
            for (i, &v) in row.iter().enumerate() {
                feature_totals[label][i] += v;
            }
        }
        let n = x.len().max(1) as f64;
        self.log_prior = class_counts
            .iter()
            .map(|&c| ((c as f64 + self.alpha) / (n + self.alpha * n_classes as f64)).ln())
            .collect();
        self.log_theta = feature_totals
            .iter()
            .map(|totals| {
                let mass: f64 = totals.iter().sum::<f64>() + self.alpha * d as f64;
                totals
                    .iter()
                    .map(|&t| ((t + self.alpha) / mass).ln())
                    .collect()
            })
            .collect();
    }

    fn predict_row(&self, x: &[f64]) -> usize {
        self.log_scores(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "NB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_token_count_classes() {
        // Class 0 emits feature 0 heavily; class 1 emits feature 1.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..30 {
            x.push(vec![5.0, 1.0]);
            y.push(0);
            x.push(vec![1.0, 5.0]);
            y.push(1);
        }
        let mut nb = NaiveBayes::default();
        nb.fit(&x, &y, 2);
        assert_eq!(nb.predict_row(&[4.0, 0.0]), 0);
        assert_eq!(nb.predict_row(&[0.0, 4.0]), 1);
    }

    #[test]
    fn priors_break_ties_on_uninformative_input() {
        // Class 1 is 3× more common; an all-zero row falls back to priors.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            x.push(vec![1.0]);
            y.push(if i % 4 == 0 { 0 } else { 1 });
        }
        let mut nb = NaiveBayes::default();
        nb.fit(&x, &y, 2);
        assert_eq!(nb.predict_row(&[0.0]), 1);
    }

    #[test]
    fn unseen_feature_is_smoothed_not_fatal() {
        let x = vec![vec![3.0, 0.0], vec![0.0, 3.0]];
        let y = vec![0, 1];
        let mut nb = NaiveBayes::default();
        nb.fit(&x, &y, 2);
        // Feature 1 never appeared with class 0: smoothed log-prob is finite.
        let scores = nb.log_scores(&[0.0, 1.0]);
        assert!(scores.iter().all(|s| s.is_finite()));
        assert_eq!(nb.predict_row(&[0.0, 1.0]), 1);
    }

    #[test]
    #[should_panic(expected = "smoothing must be positive")]
    fn zero_alpha_rejected() {
        NaiveBayes::new(0.0);
    }
}
