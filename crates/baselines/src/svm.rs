//! Linear SVM trained with Pegasos-style SGD on the hinge loss — the
//! stand-in for MADlib's `madlib.svm_classification`. Multiclass via
//! one-vs-rest.

use crate::DenseClassifier;

/// One-vs-rest linear SVM.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Per-class weight vectors (d + 1 with bias last).
    weights: Vec<Vec<f64>>,
    pub epochs: usize,
    /// Regularization strength λ (Pegasos step size is 1/(λ·t)).
    pub lambda: f64,
    /// Rescale each example's loss by the inverse frequency of its class
    /// (scikit-learn's `class_weight="balanced"`); without this the hinge
    /// gradient is starved on extremely imbalanced data like RLCP and the
    /// minority class is never learned.
    pub balanced: bool,
}

impl Default for LinearSvm {
    fn default() -> Self {
        LinearSvm {
            weights: Vec::new(),
            epochs: 30,
            lambda: 1e-3,
            balanced: true,
        }
    }
}

impl LinearSvm {
    pub fn new(epochs: usize, lambda: f64) -> Self {
        LinearSvm {
            weights: Vec::new(),
            epochs,
            lambda,
            balanced: true,
        }
    }

    fn margin(w: &[f64], x: &[f64]) -> f64 {
        let d = x.len();
        let mut s = w[d];
        for i in 0..d {
            if x[i] != 0.0 {
                s += w[i] * x[i];
            }
        }
        s
    }

    /// Decision values per class.
    pub fn decision(&self, x: &[f64]) -> Vec<f64> {
        self.weights.iter().map(|w| Self::margin(w, x)).collect()
    }
}

impl DenseClassifier for LinearSvm {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) {
        assert_eq!(x.len(), y.len());
        let d = x.first().map(|r| r.len()).unwrap_or(0);
        self.weights = vec![vec![0.0; d + 1]; n_classes];
        // Balanced class weights: n / (k · count_c).
        let class_weight: Vec<f64> = if self.balanced {
            let mut counts = vec![0usize; n_classes];
            for &label in y {
                counts[label] += 1;
            }
            counts
                .iter()
                .map(|&c| {
                    if c == 0 {
                        0.0
                    } else {
                        y.len() as f64 / (n_classes as f64 * c as f64)
                    }
                })
                .collect()
        } else {
            vec![1.0; n_classes]
        };
        let mut t = 1.0f64;
        for _ in 0..self.epochs {
            for (row, &label) in x.iter().zip(y) {
                let lr = 1.0 / (self.lambda * t);
                t += 1.0;
                for (c, w) in self.weights.iter_mut().enumerate() {
                    let target = if c == label { 1.0 } else { -1.0 };
                    // The loss of an example counts toward the class whose
                    // one-vs-rest problem it is positive for.
                    let cw = if c == label {
                        class_weight[c]
                    } else {
                        class_weight[label]
                    };
                    let m = Self::margin(w, row) * target;
                    // L2 shrinkage.
                    let shrink = 1.0 - lr * self.lambda;
                    for wi in w.iter_mut().take(d) {
                        *wi *= shrink;
                    }
                    if m < 1.0 {
                        let step = lr * target * cw;
                        for i in 0..d {
                            if row[i] != 0.0 {
                                w[i] += step * row[i];
                            }
                        }
                        w[d] += step * 0.1; // damped bias update
                    }
                }
            }
        }
    }

    fn predict_row(&self, x: &[f64]) -> usize {
        self.decision(x)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_one_hot_classes() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..60 {
            x.push(vec![1.0, 0.0]);
            y.push(0);
            x.push(vec![0.0, 1.0]);
            y.push(1);
        }
        let mut clf = LinearSvm::default();
        clf.fit(&x, &y, 2);
        assert_eq!(clf.predict_row(&[1.0, 0.0]), 0);
        assert_eq!(clf.predict_row(&[0.0, 1.0]), 1);
    }

    #[test]
    fn tolerates_label_noise() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let class = i % 2;
            let mut row = vec![0.0, 0.0];
            row[class] = 1.0;
            x.push(row);
            // 10% label noise.
            y.push(if i % 10 == 0 { 1 - class } else { class });
        }
        let mut clf = LinearSvm::default();
        clf.fit(&x, &y, 2);
        assert_eq!(clf.predict_row(&[1.0, 0.0]), 0);
        assert_eq!(clf.predict_row(&[0.0, 1.0]), 1);
    }

    #[test]
    fn multiclass_ovr() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..50 {
            for c in 0..4usize {
                let mut row = vec![0.0; 4];
                row[c] = 1.0;
                x.push(row);
                y.push(c);
            }
        }
        let mut clf = LinearSvm::default();
        clf.fit(&x, &y, 4);
        for c in 0..4usize {
            let mut row = vec![0.0; 4];
            row[c] = 1.0;
            assert_eq!(clf.predict_row(&row), c);
        }
    }
}
