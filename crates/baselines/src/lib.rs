//! # baselines — MADlib stand-ins
//!
//! The paper's Section 5 compares BornSQL against logistic regression,
//! support vector machines, and decision trees as implemented by Apache
//! MADlib. MADlib is C++ UDFs inside PostgreSQL, which we cannot run here;
//! this crate implements the same three algorithms over the same *data
//! handling model* MADlib imposes:
//!
//! 1. the input must first be **densified** — materialized into a dense
//!    row-major feature matrix (MADlib cannot train on sparse input, the
//!    key limitation Section 5.1 builds its argument on); the
//!    [`dense::densify`] step is timed separately, mirroring the paper's
//!    "data preprocessing" timings;
//! 2. training and inference then run over the dense matrix.
//!
//! [`dense::dense_storage_bytes`] reproduces the paper's back-of-envelope
//! showing the Scopus dataset would need ~32 TB in this format.

#![forbid(unsafe_code)]

pub mod dense;
pub mod logreg;
pub mod nbayes;
pub mod svm;
pub mod tree;

pub use dense::{dense_storage_bytes, densify, DenseDataset};
pub use logreg::LogisticRegression;
pub use nbayes::NaiveBayes;
pub use svm::LinearSvm;
pub use tree::DecisionTree;

/// Common interface for the dense baselines (MADlib-style API surface:
/// fit on a materialized matrix, predict row by row).
pub trait DenseClassifier {
    /// Train on a dense matrix with class indexes `0..n_classes`.
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize);
    /// Predict the class index of one dense row.
    fn predict_row(&self, x: &[f64]) -> usize;
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Predict a batch.
    fn predict(&self, x: &[Vec<f64>]) -> Vec<usize> {
        x.iter().map(|row| self.predict_row(row)).collect()
    }
}
