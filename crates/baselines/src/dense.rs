//! Dense materialization — the MADlib data-handling model.
//!
//! MADlib requires input in one of three formats (paper Section 5.1): tidy
//! columns (limited by the DBMS column cap), fixed-length dense arrays, or a
//! sparse format that its algorithms cannot actually train on. The only
//! workable path for one-hot data is the dense array format, which stores
//! every zero explicitly. This module performs that conversion (timed by
//! the benchmark harness as "preprocessing") and quantifies its cost.

use std::collections::HashMap;

use datasets::{SparseDataset, SparseItem};

/// A dense, materialized dataset: the input format MADlib trains on.
#[derive(Debug, Clone)]
pub struct DenseDataset {
    /// Row-major `n × d` matrix with explicit zeros.
    pub features: Vec<Vec<f64>>,
    /// Class index per row.
    pub labels: Vec<usize>,
    pub feature_names: Vec<String>,
    pub label_names: Vec<String>,
}

impl DenseDataset {
    pub fn n_rows(&self) -> usize {
        self.features.len()
    }

    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Bytes needed to store the dense matrix at 4 bytes per element —
    /// the paper's Section 5.1 estimate (`2M rows × 4M features × 4 B ≈ 32 TB`
    /// for Scopus).
    pub fn storage_bytes(&self) -> u64 {
        dense_storage_bytes(self.n_rows(), self.n_features())
    }
}

/// The paper's dense-storage estimate: `rows × features × 4` bytes.
pub fn dense_storage_bytes(n_rows: usize, n_features: usize) -> u64 {
    n_rows as u64 * n_features as u64 * 4
}

/// Densify a sparse dataset using a feature space fixed by `vocabulary
/// items` (pass the training split here so test rows project onto the
/// training feature space, as MADlib's pipeline does).
pub fn densify_with_vocab(
    items: &[SparseItem],
    vocab_items: &[SparseItem],
    label_names: &mut Vec<String>,
) -> DenseDataset {
    // Feature space from the vocabulary split.
    let mut feature_index: HashMap<&str, usize> = HashMap::new();
    let mut feature_names: Vec<String> = Vec::new();
    for item in vocab_items {
        for (j, _) in &item.features {
            if !feature_index.contains_key(j.as_str()) {
                feature_index.insert(j.as_str(), feature_names.len());
                feature_names.push(j.clone());
            }
        }
    }
    let mut label_index: HashMap<String, usize> = label_names
        .iter()
        .enumerate()
        .map(|(i, l)| (l.clone(), i))
        .collect();

    let d = feature_names.len();
    let mut features = Vec::with_capacity(items.len());
    let mut labels = Vec::with_capacity(items.len());
    for item in items {
        let mut row = vec![0.0; d];
        for (j, w) in &item.features {
            if let Some(&idx) = feature_index.get(j.as_str()) {
                row[idx] = *w;
            }
        }
        features.push(row);
        let label = match label_index.get(&item.label) {
            Some(&i) => i,
            None => {
                let i = label_names.len();
                label_names.push(item.label.clone());
                label_index.insert(item.label.clone(), i);
                i
            }
        };
        labels.push(label);
    }
    DenseDataset {
        features,
        labels,
        feature_names,
        label_names: label_names.clone(),
    }
}

/// Densify a whole dataset (feature space from the data itself).
pub fn densify(dataset: &SparseDataset) -> DenseDataset {
    let mut label_names = Vec::new();
    densify_with_vocab(&dataset.items, &dataset.items, &mut label_names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::SparseItem;

    fn items() -> Vec<SparseItem> {
        vec![
            SparseItem {
                id: 1,
                features: vec![("a".into(), 1.0), ("b".into(), 2.0)],
                label: "x".into(),
            },
            SparseItem {
                id: 2,
                features: vec![("c".into(), 3.0)],
                label: "y".into(),
            },
        ]
    }

    #[test]
    fn densify_fills_zeros_explicitly() {
        let d = densify(&SparseDataset {
            name: "t".into(),
            items: items(),
        });
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.features[0], vec![1.0, 2.0, 0.0]);
        assert_eq!(d.features[1], vec![0.0, 0.0, 3.0]);
        assert_eq!(d.labels, vec![0, 1]);
    }

    #[test]
    fn unseen_test_features_are_dropped() {
        let train = items();
        let test = vec![SparseItem {
            id: 3,
            features: vec![("a".into(), 1.0), ("zzz".into(), 5.0)],
            label: "x".into(),
        }];
        let mut labels = Vec::new();
        let _ = densify_with_vocab(&train, &train, &mut labels);
        let dtest = densify_with_vocab(&test, &train, &mut labels);
        assert_eq!(dtest.n_features(), 3);
        assert_eq!(dtest.features[0], vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn storage_estimate_matches_paper() {
        // Paper: ~2M rows × ~4M features × 4 B ≈ 32 TB.
        let bytes = dense_storage_bytes(2_000_000, 4_000_000);
        assert_eq!(bytes, 32_000_000_000_000);
    }
}
