//! CART decision tree with Gini impurity — the stand-in for MADlib's
//! `madlib.tree_train`.

use crate::DenseClassifier;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Binary CART tree on numeric (incl. one-hot) features.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Option<Node>,
    pub max_depth: usize,
    pub min_samples_split: usize,
}

impl Default for DecisionTree {
    fn default() -> Self {
        DecisionTree {
            root: None,
            max_depth: 10,
            min_samples_split: 4,
        }
    }
}

impl DecisionTree {
    pub fn new(max_depth: usize, min_samples_split: usize) -> Self {
        DecisionTree {
            root: None,
            max_depth,
            min_samples_split,
        }
    }

    /// Depth of the trained tree (for diagnostics).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        self.root.as_ref().map(d).unwrap_or(0)
    }
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut g = 1.0;
    for &c in counts {
        let p = c as f64 / total as f64;
        g -= p * p;
    }
    g
}

fn majority(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

struct Builder<'a> {
    x: &'a [Vec<f64>],
    y: &'a [usize],
    n_classes: usize,
    max_depth: usize,
    min_samples_split: usize,
}

impl Builder<'_> {
    fn class_counts(&self, idxs: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &i in idxs {
            counts[self.y[i]] += 1;
        }
        counts
    }

    fn build(&self, idxs: &[usize], depth: usize) -> Node {
        let counts = self.class_counts(idxs);
        let node_gini = gini(&counts, idxs.len());
        if depth >= self.max_depth || idxs.len() < self.min_samples_split || node_gini == 0.0 {
            return Node::Leaf {
                class: majority(&counts),
            };
        }

        // Best (feature, threshold) by Gini gain. For one-hot data the only
        // useful threshold is 0.5; for counts we scan candidate midpoints.
        let d = self.x[0].len();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity)
        for f in 0..d {
            let mut values: Vec<f64> = idxs.iter().map(|&i| self.x[i][f]).collect();
            values.sort_by(|a, b| a.total_cmp(b));
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            // Candidate thresholds: midpoints (cap the number scanned to
            // keep one-hot training fast — one-hot has exactly one).
            let candidates: Vec<f64> = values
                .windows(2)
                .take(8)
                .map(|w| (w[0] + w[1]) / 2.0)
                .collect();
            for &thr in &candidates {
                let mut lc = vec![0usize; self.n_classes];
                let mut rc = vec![0usize; self.n_classes];
                let (mut ln, mut rn) = (0usize, 0usize);
                for &i in idxs {
                    if self.x[i][f] <= thr {
                        lc[self.y[i]] += 1;
                        ln += 1;
                    } else {
                        rc[self.y[i]] += 1;
                        rn += 1;
                    }
                }
                if ln == 0 || rn == 0 {
                    continue;
                }
                let total = (ln + rn) as f64;
                let impurity =
                    (ln as f64 / total) * gini(&lc, ln) + (rn as f64 / total) * gini(&rc, rn);
                if best.is_none_or(|(_, _, b)| impurity < b - 1e-12) {
                    best = Some((f, thr, impurity));
                }
            }
        }

        // Zero-gain splits are allowed (as in scikit-learn's CART): XOR-like
        // structure needs a gainless first split before the gainful second
        // one. Recursion still terminates because both children are
        // non-empty and depth is bounded.
        match best {
            Some((feature, threshold, _impurity)) => {
                let (mut li, mut ri) = (Vec::new(), Vec::new());
                for &i in idxs {
                    if self.x[i][feature] <= threshold {
                        li.push(i);
                    } else {
                        ri.push(i);
                    }
                }
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(self.build(&li, depth + 1)),
                    right: Box::new(self.build(&ri, depth + 1)),
                }
            }
            _ => Node::Leaf {
                class: majority(&counts),
            },
        }
    }
}

impl DenseClassifier for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize], n_classes: usize) {
        assert_eq!(x.len(), y.len());
        if x.is_empty() {
            self.root = Some(Node::Leaf { class: 0 });
            return;
        }
        let builder = Builder {
            x,
            y,
            n_classes,
            max_depth: self.max_depth,
            min_samples_split: self.min_samples_split,
        };
        let idxs: Vec<usize> = (0..x.len()).collect();
        self.root = Some(builder.build(&idxs, 0));
    }

    fn predict_row(&self, x: &[f64]) -> usize {
        let mut node = self.root.as_ref().expect("tree not fitted");
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "DT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_xor_with_depth_two() {
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![0, 1, 1, 0];
        // Replicate for min_samples_split.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..10 {
            xs.extend(x.clone());
            ys.extend(y.clone());
        }
        let mut tree = DecisionTree::default();
        tree.fit(&xs, &ys, 2);
        for (row, &label) in x.iter().zip(&y) {
            assert_eq!(tree.predict_row(row), label);
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pure_node_is_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let mut tree = DecisionTree::default();
        tree.fit(&x, &y, 2);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict_row(&[99.0]), 1);
    }

    #[test]
    fn respects_max_depth() {
        // Noisy data that would otherwise grow deep.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            x.push(vec![(i % 17) as f64, (i % 13) as f64, (i % 7) as f64]);
            y.push((i % 3) as usize);
        }
        let mut tree = DecisionTree::new(3, 2);
        tree.fit(&x, &y, 3);
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn one_hot_split() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..20 {
            x.push(vec![1.0, 0.0]);
            y.push(0);
            x.push(vec![0.0, 1.0]);
            y.push(1);
        }
        let mut tree = DecisionTree::default();
        tree.fit(&x, &y, 2);
        assert_eq!(tree.predict_row(&[1.0, 0.0]), 0);
        assert_eq!(tree.predict_row(&[0.0, 1.0]), 1);
        assert_eq!(tree.depth(), 1);
    }
}
