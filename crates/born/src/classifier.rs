//! The Born classifier: training, incremental learning, unlearning,
//! deployment, inference, and explanations — all sparse.

use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

/// Inference hyper-parameters (paper Section 2.2). Training does **not**
/// depend on them, which is what makes cached-weight deployment and
/// retrain-free tuning possible.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HyperParams {
    /// Born exponent, `a > 0`. The NeurIPS paper's default is `1/2`.
    pub a: f64,
    /// Balance between class and feature normalization, `0 ≤ b ≤ 1`.
    pub b: f64,
    /// Entropy-weight exponent, `h ≥ 0`.
    pub h: f64,
}

impl Default for HyperParams {
    fn default() -> Self {
        HyperParams {
            a: 0.5,
            b: 1.0,
            h: 1.0,
        }
    }
}

impl HyperParams {
    pub fn new(a: f64, b: f64, h: f64) -> Result<Self, String> {
        // NaN must fail every check, hence the negated comparisons.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(a > 0.0) {
            return Err(format!("hyper-parameter a must be > 0, got {a}"));
        }
        if !(0.0..=1.0).contains(&b) {
            return Err(format!("hyper-parameter b must be in [0, 1], got {b}"));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(h >= 0.0) {
            return Err(format!("hyper-parameter h must be ≥ 0, got {h}"));
        }
        Ok(HyperParams { a, b, h })
    }
}

/// One training example: a sparse feature vector, a sparse target vector,
/// and a sample weight. Negative weights unlearn (paper eq. 6).
#[derive(Debug, Clone)]
pub struct TrainItem<J, K> {
    pub x: Vec<(J, f64)>,
    pub y: Vec<(K, f64)>,
    pub weight: f64,
}

impl<J, K> TrainItem<J, K> {
    /// A single-label item with unit weights.
    pub fn labeled(x: Vec<(J, f64)>, label: K) -> Self {
        TrainItem {
            x,
            y: vec![(label, 1.0)],
            weight: 1.0,
        }
    }

    /// Flip the sample weight — turns a learning item into an unlearning one.
    pub fn negated(mut self) -> Self {
        self.weight = -self.weight;
        self
    }
}

/// The Born classifier state: the sparse joint-probability tensor `P_jk`.
///
/// Generic over feature (`J`) and class (`K`) key types; `Ord` bounds keep
/// iteration deterministic, which matters for reproducible explanations.
/// Serializable when the key types are — a serialized classifier *is* the
/// model (training state included), mirroring the `{model}_corpus` table.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct BornClassifier<J = String, K = String>
where
    J: Ord + Clone,
    K: Ord + Clone,
{
    /// `P[j][k]` — the unnormalized joint probability of feature j, class k.
    corpus: BTreeMap<J, BTreeMap<K, f64>>,
    /// All classes ever seen (needed for the entropy scale `ln(Σ_k 1)`).
    classes: BTreeSet<K>,
}

impl<J, K> BornClassifier<J, K>
where
    J: Ord + Clone + Hash,
    K: Ord + Clone + Hash,
{
    pub fn new() -> Self {
        BornClassifier {
            corpus: BTreeMap::new(),
            classes: BTreeSet::new(),
        }
    }

    /// Train from scratch (paper eq. 1). Equivalent to `new` + `partial_fit`.
    pub fn fit(items: &[TrainItem<J, K>]) -> Self {
        let mut clf = Self::new();
        clf.partial_fit(items);
        clf
    }

    /// Exact incremental learning (paper eq. 3): `B(D) + B(D_i)`.
    pub fn partial_fit(&mut self, items: &[TrainItem<J, K>]) {
        for item in items {
            let x_norm: f64 = item.x.iter().map(|(_, w)| w).sum();
            let y_norm: f64 = item.y.iter().map(|(_, w)| w).sum();
            let denom = x_norm * y_norm;
            if denom == 0.0 {
                continue; // an empty item carries no probability mass
            }
            for (k, _) in &item.y {
                self.classes.insert(k.clone());
            }
            for (j, xw) in &item.x {
                let row = self.corpus.entry(j.clone()).or_default();
                for (k, yw) in &item.y {
                    let delta = item.weight * xw * yw / denom;
                    let cell = row.entry(k.clone()).or_insert(0.0);
                    *cell += delta;
                }
            }
        }
        self.prune();
    }

    /// Exact unlearning (paper eq. 6): incremental learning on `-D_f`.
    ///
    /// The caller must pass the same items (features, targets, and weights)
    /// that were originally learned; the entries they contributed are
    /// subtracted exactly.
    pub fn unlearn(&mut self, items: &[TrainItem<J, K>]) {
        let negated: Vec<TrainItem<J, K>> = items.iter().map(|i| i.clone().negated()).collect();
        self.partial_fit(&negated);
    }

    /// Merge another classifier's parameters (eq. 3 at tensor level).
    pub fn merge(&mut self, other: &Self) {
        for (j, row) in &other.corpus {
            let dst = self.corpus.entry(j.clone()).or_default();
            for (k, w) in row {
                *dst.entry(k.clone()).or_insert(0.0) += w;
            }
        }
        self.classes.extend(other.classes.iter().cloned());
        self.prune();
    }

    /// Drop cells that cancelled to (numerically) zero and empty rows, so an
    /// unlearned model is structurally identical to one retrained without
    /// the forgotten data.
    fn prune(&mut self) {
        for row in self.corpus.values_mut() {
            row.retain(|_, w| w.abs() > 1e-12);
        }
        self.corpus.retain(|_, row| !row.is_empty());
        // A class disappears only when no cell references it anymore.
        let live: BTreeSet<K> = self
            .corpus
            .values()
            .flat_map(|row| row.keys().cloned())
            .collect();
        self.classes = live;
    }

    /// Number of distinct features with non-zero mass.
    pub fn n_features(&self) -> usize {
        self.corpus.len()
    }

    /// Number of distinct classes with non-zero mass.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of non-zero `(j, k)` cells — the size of the corpus table.
    pub fn n_cells(&self) -> usize {
        self.corpus.values().map(|r| r.len()).sum()
    }

    /// Iterate the raw corpus entries `(j, k, P_jk)` in deterministic order.
    pub fn corpus_entries(&self) -> impl Iterator<Item = (&J, &K, f64)> {
        self.corpus
            .iter()
            .flat_map(|(j, row)| row.iter().map(move |(k, w)| (j, k, *w)))
    }

    /// Raw `P_jk` cell lookup.
    pub fn weight(&self, j: &J, k: &K) -> f64 {
        self.corpus
            .get(j)
            .and_then(|row| row.get(k))
            .copied()
            .unwrap_or(0.0)
    }

    /// Deploy: pre-compute the cached inference weights `HW_jk = H_j^h·W_jk^a`
    /// (paper eqs. 8–10 and Section 3.3).
    ///
    /// Returns `None` when the model is empty.
    pub fn deploy(&self, params: HyperParams) -> Option<DeployedModel<J, K>> {
        if self.corpus.is_empty() || self.classes.is_empty() {
            return None;
        }
        // Marginals. Cells with non-positive mass (possible only transiently
        // through float cancellation) are excluded, matching a retrained
        // model.
        let mut p_j: BTreeMap<&J, f64> = BTreeMap::new();
        let mut p_k: BTreeMap<&K, f64> = BTreeMap::new();
        for (j, row) in &self.corpus {
            for (k, &w) in row {
                if w <= 0.0 {
                    continue;
                }
                *p_j.entry(j).or_insert(0.0) += w;
                *p_k.entry(k).or_insert(0.0) += w;
            }
        }

        // W_jk = P_jk / ((Σ_j P_jk)^b · (Σ_k P_jk)^(1-b))   (eq. 8)
        let mut w_jk: BTreeMap<J, BTreeMap<K, f64>> = BTreeMap::new();
        for (j, row) in &self.corpus {
            for (k, &w) in row {
                if w <= 0.0 {
                    continue;
                }
                let denom = p_k[k].powf(params.b) * p_j[j].powf(1.0 - params.b);
                w_jk.entry(j.clone())
                    .or_default()
                    .insert(k.clone(), w / denom);
            }
        }

        // H_j = 1 + Σ_k H̃_jk ln H̃_jk / ln(n_classes)   (eqs. 9–10)
        let n_classes = self.classes.len();
        let ln_classes = (n_classes as f64).ln();
        let mut weights: BTreeMap<J, BTreeMap<K, f64>> = BTreeMap::new();
        for (j, row) in &w_jk {
            let w_j: f64 = row.values().sum();
            let h_j = if n_classes <= 1 {
                // One class: the entropy term is 0/0; the classifier is
                // degenerate and every feature is equally (un)informative.
                1.0
            } else {
                let entropy: f64 = row
                    .values()
                    .map(|&w| {
                        let p = w / w_j;
                        if p > 0.0 {
                            p * p.ln()
                        } else {
                            0.0
                        }
                    })
                    .sum();
                1.0 + entropy / ln_classes
            };
            let hw_row: BTreeMap<K, f64> = row
                .iter()
                .map(|(k, &w)| (k.clone(), h_j.powf(params.h) * w.powf(params.a)))
                .collect();
            weights.insert(j.clone(), hw_row);
        }

        Some(DeployedModel {
            weights,
            classes: self.classes.clone(),
            params,
        })
    }
}

/// A deployed model: the cached weights `HW_jk` plus hyper-parameters.
/// This corresponds to the paper's `{model}_weights` table.
#[derive(Debug, Clone)]
pub struct DeployedModel<J = String, K = String>
where
    J: Ord + Clone,
    K: Ord + Clone,
{
    /// `HW[j][k] = H_j^h · W_jk^a`.
    weights: BTreeMap<J, BTreeMap<K, f64>>,
    classes: BTreeSet<K>,
    params: HyperParams,
}

/// A ranked list of `(feature, class, weight)` contributions.
pub type Explanation<J, K> = Vec<(J, K, f64)>;

impl<J, K> DeployedModel<J, K>
where
    J: Ord + Clone,
    K: Ord + Clone,
{
    pub fn params(&self) -> HyperParams {
        self.params
    }

    pub fn n_weights(&self) -> usize {
        self.weights.values().map(|r| r.len()).sum()
    }

    pub fn classes(&self) -> impl Iterator<Item = &K> {
        self.classes.iter()
    }

    /// Unnormalized class scores `u_k^a = Σ_j HW_jk · x_j^a` (paper eq. 11,
    /// before the `1/a` root).
    pub fn scores(&self, x: &[(J, f64)]) -> BTreeMap<K, f64> {
        let mut scores: BTreeMap<K, f64> = BTreeMap::new();
        for (j, xw) in x {
            if *xw <= 0.0 {
                continue;
            }
            if let Some(row) = self.weights.get(j) {
                let xa = xw.powf(self.params.a);
                for (k, hw) in row {
                    *scores.entry(k.clone()).or_insert(0.0) += hw * xa;
                }
            }
        }
        scores
    }

    /// Predicted class: `argmax_k u_k^a`. Deterministic tie-break on the
    /// class order. `None` when no feature is known to the model.
    pub fn predict(&self, x: &[(J, f64)]) -> Option<K> {
        let scores = self.scores(x);
        scores
            .into_iter()
            .max_by(|(ka, wa), (kb, wb)| {
                wa.total_cmp(wb).then_with(|| kb.cmp(ka)) // prefer the smaller key on ties
            })
            .map(|(k, _)| k)
    }

    /// The `k` most probable classes with their probabilities, best first.
    pub fn predict_topk(&self, x: &[(J, f64)], k: usize) -> Vec<(K, f64)> {
        let mut proba = self.predict_proba(x);
        proba.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        proba.truncate(k);
        proba
    }

    /// Normalized probability distribution `u_k / Σ_k u_k` over all classes.
    /// Classes with no evidence get probability zero; an all-unknown item
    /// yields the uniform distribution.
    pub fn predict_proba(&self, x: &[(J, f64)]) -> Vec<(K, f64)> {
        let scores = self.scores(x);
        let inv_a = 1.0 / self.params.a;
        let u: BTreeMap<&K, f64> = scores.iter().map(|(k, s)| (k, s.powf(inv_a))).collect();
        let total: f64 = u.values().sum();
        if total <= 0.0 {
            let p = 1.0 / self.classes.len().max(1) as f64;
            return self.classes.iter().map(|k| (k.clone(), p)).collect();
        }
        self.classes
            .iter()
            .map(|k| (k.clone(), u.get(k).copied().unwrap_or(0.0) / total))
            .collect()
    }

    /// Global explanation: the cached weights `HW_jk` themselves, sorted by
    /// descending weight (paper Section 3.5).
    pub fn explain_global(&self) -> Explanation<J, K> {
        let mut out: Explanation<J, K> = self
            .weights
            .iter()
            .flat_map(|(j, row)| row.iter().map(move |(k, &w)| (j.clone(), k.clone(), w)))
            .collect();
        out.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Local explanation for a set of items: weights `HW_jk · z_j^a` where
    /// `z` is the weighted average of the normalized feature vectors
    /// (paper eq. 30).
    pub fn explain_local(&self, items: &[(Vec<(J, f64)>, f64)]) -> Explanation<J, K> {
        // z_j = Σ_n w_n · x_nj / Σ_j x_nj
        let mut z: BTreeMap<J, f64> = BTreeMap::new();
        for (x, sample_w) in items {
            let norm: f64 = x.iter().map(|(_, w)| w).sum();
            if norm == 0.0 {
                continue;
            }
            for (j, w) in x {
                *z.entry(j.clone()).or_insert(0.0) += sample_w * w / norm;
            }
        }
        let mut out: Explanation<J, K> = Vec::new();
        for (j, zj) in &z {
            if *zj <= 0.0 {
                continue;
            }
            if let Some(row) = self.weights.get(j) {
                let za = zj.powf(self.params.a);
                for (k, hw) in row {
                    out.push((j.clone(), k.clone(), hw * za));
                }
            }
        }
        out.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Iterate the cached weights in deterministic order.
    pub fn weight_entries(&self) -> impl Iterator<Item = (&J, &K, f64)> {
        self.weights
            .iter()
            .flat_map(|(j, row)| row.iter().map(move |(k, w)| (j, k, *w)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(x: Vec<(&'static str, f64)>, k: &'static str) -> TrainItem<&'static str, &'static str> {
        TrainItem::labeled(x, k)
    }

    fn toy_items() -> Vec<TrainItem<&'static str, &'static str>> {
        vec![
            item(vec![("robot", 2.0), ("neural", 1.0)], "ai"),
            item(vec![("neural", 1.0), ("vision", 1.0)], "ai"),
            item(vec![("poisson", 1.0), ("variance", 2.0)], "stats"),
            item(vec![("variance", 1.0), ("sample", 1.0)], "stats"),
            item(vec![("queue", 1.0), ("inventory", 1.0)], "ops"),
        ]
    }

    #[test]
    fn fit_accumulates_joint_probability() {
        let clf = BornClassifier::fit(&[item(vec![("a", 1.0), ("b", 3.0)], "k1")]);
        // denom = (1+3)*1 = 4
        assert!((clf.weight(&"a", &"k1") - 0.25).abs() < 1e-15);
        assert!((clf.weight(&"b", &"k1") - 0.75).abs() < 1e-15);
    }

    #[test]
    fn incremental_equals_batch() {
        let items = toy_items();
        let full = BornClassifier::fit(&items);
        let mut inc = BornClassifier::new();
        inc.partial_fit(&items[..2]);
        inc.partial_fit(&items[2..]);
        assert_eq!(full.n_cells(), inc.n_cells());
        for (j, k, w) in full.corpus_entries() {
            assert!((w - inc.weight(j, k)).abs() < 1e-12, "cell ({j:?},{k:?})");
        }
    }

    #[test]
    fn unlearn_equals_retrain() {
        let items = toy_items();
        let mut clf = BornClassifier::fit(&items);
        clf.unlearn(&items[3..]);
        let retrained = BornClassifier::fit(&items[..3]);
        assert_eq!(clf.n_cells(), retrained.n_cells());
        assert_eq!(clf.n_classes(), retrained.n_classes());
        for (j, k, w) in retrained.corpus_entries() {
            assert!((w - clf.weight(j, k)).abs() < 1e-12);
        }
    }

    #[test]
    fn unlearning_whole_class_removes_it() {
        let items = toy_items();
        let mut clf = BornClassifier::fit(&items);
        assert_eq!(clf.n_classes(), 3);
        clf.unlearn(&items[4..]); // the only "ops" item
        assert_eq!(clf.n_classes(), 2);
        assert!(!clf.corpus_entries().any(|(_, k, _)| *k == "ops"));
    }

    #[test]
    fn predict_prefers_class_with_evidence() {
        let model = BornClassifier::fit(&toy_items())
            .deploy(HyperParams::default())
            .unwrap();
        assert_eq!(model.predict(&[("robot", 1.0)]).unwrap(), "ai");
        assert_eq!(model.predict(&[("variance", 1.0)]).unwrap(), "stats");
        assert_eq!(model.predict(&[("queue", 2.0)]).unwrap(), "ops");
        assert!(model.predict(&[("unseen", 1.0)]).is_none());
    }

    #[test]
    fn probabilities_normalize() {
        let model = BornClassifier::fit(&toy_items())
            .deploy(HyperParams::default())
            .unwrap();
        let proba = model.predict_proba(&[("neural", 1.0), ("variance", 1.0)]);
        let total: f64 = proba.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(proba.iter().all(|(_, p)| (0.0..=1.0).contains(p)));
        // Unknown item → uniform.
        let uniform = model.predict_proba(&[("unseen", 1.0)]);
        for (_, p) in uniform {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn entropy_weight_downweights_nondiscriminative_features() {
        // "common" appears equally in both classes; "rare" only in one.
        let items = vec![
            item(vec![("common", 1.0), ("rare", 1.0)], "k1"),
            item(vec![("common", 1.0)], "k2"),
        ];
        let model = BornClassifier::fit(&items)
            .deploy(HyperParams {
                a: 0.5,
                b: 1.0,
                h: 1.0,
            })
            .unwrap();
        let global = model.explain_global();
        let w_common_k1 = global
            .iter()
            .find(|(j, k, _)| *j == "common" && *k == "k1")
            .map(|(_, _, w)| *w)
            .unwrap_or(0.0);
        let w_rare_k1 = global
            .iter()
            .find(|(j, k, _)| *j == "rare" && *k == "k1")
            .map(|(_, _, w)| *w)
            .unwrap();
        assert!(
            w_rare_k1 > w_common_k1,
            "discriminative feature must outweigh common one: {w_rare_k1} vs {w_common_k1}"
        );
    }

    #[test]
    fn perfectly_balanced_feature_has_zero_weight() {
        // A feature whose class-normalized weights W_jk are uniform has
        // H̃ uniform → H_j = 0 → HW = 0 when h > 0. With b = 1 the
        // normalization is by class mass, so the class masses must be equal
        // for "even" to be genuinely uninformative.
        let items = vec![
            item(vec![("even", 1.0)], "k1"),
            item(vec![("even", 1.0)], "k2"),
            item(vec![("odd", 1.0)], "k1"),
            item(vec![("odd2", 1.0)], "k2"),
        ];
        let model = BornClassifier::fit(&items)
            .deploy(HyperParams {
                a: 0.5,
                b: 1.0,
                h: 1.0,
            })
            .unwrap();
        let scores = model.scores(&[("even", 1.0)]);
        for (_, s) in scores {
            assert!(s.abs() < 1e-12, "balanced feature must contribute zero");
        }
    }

    #[test]
    fn hyperparams_validation() {
        assert!(HyperParams::new(0.5, 1.0, 1.0).is_ok());
        assert!(HyperParams::new(0.0, 1.0, 1.0).is_err());
        assert!(HyperParams::new(0.5, 1.5, 1.0).is_err());
        assert!(HyperParams::new(0.5, 1.0, -0.1).is_err());
        assert!(HyperParams::new(f64::NAN, 1.0, 1.0).is_err());
    }

    #[test]
    fn deploy_empty_model_is_none() {
        let clf: BornClassifier<&str, &str> = BornClassifier::new();
        assert!(clf.deploy(HyperParams::default()).is_none());
    }

    #[test]
    fn local_explanation_ranks_strong_evidence_first() {
        let model = BornClassifier::fit(&toy_items())
            .deploy(HyperParams::default())
            .unwrap();
        let local = model.explain_local(&[(vec![("robot", 3.0), ("neural", 1.0)], 1.0)]);
        assert!(!local.is_empty());
        let (j, k, _) = &local[0];
        assert_eq!((*j, *k), ("robot", "ai"));
    }

    #[test]
    fn sample_weights_scale_contributions() {
        let light = BornClassifier::fit(&[item(vec![("f", 1.0)], "k")]);
        let heavy = BornClassifier::fit(&[TrainItem {
            x: vec![("f", 1.0)],
            y: vec![("k", 1.0)],
            weight: 3.0,
        }]);
        assert!((heavy.weight(&"f", &"k") - 3.0 * light.weight(&"f", &"k")).abs() < 1e-15);
    }

    #[test]
    fn merge_matches_joint_fit() {
        let items = toy_items();
        let mut a = BornClassifier::fit(&items[..2]);
        let b = BornClassifier::fit(&items[2..]);
        a.merge(&b);
        let full = BornClassifier::fit(&items);
        for (j, k, w) in full.corpus_entries() {
            assert!((w - a.weight(j, k)).abs() < 1e-12);
        }
    }

    #[test]
    fn multilabel_targets_split_mass() {
        let clf = BornClassifier::fit(&[TrainItem {
            x: vec![("f", 1.0)],
            y: vec![("k1", 1.0), ("k2", 1.0)],
            weight: 1.0,
        }]);
        // denom = 1 * 2
        assert!((clf.weight(&"f", &"k1") - 0.5).abs() < 1e-15);
        assert!((clf.weight(&"f", &"k2") - 0.5).abs() < 1e-15);
    }

    #[test]
    fn topk_is_sorted_and_truncated() {
        let model = BornClassifier::fit(&toy_items())
            .deploy(HyperParams::default())
            .unwrap();
        let top = model.predict_topk(&[("neural", 1.0), ("variance", 1.0)], 2);
        assert_eq!(top.len(), 2);
        assert!(top[0].1 >= top[1].1);
        let all = model.predict_topk(&[("neural", 1.0)], 99);
        assert_eq!(all.len(), 3, "truncation caps at n_classes");
    }

    #[test]
    fn empty_items_are_ignored() {
        let mut clf = BornClassifier::fit(&toy_items());
        let before = clf.n_cells();
        clf.partial_fit(&[TrainItem {
            x: vec![],
            y: vec![("ai", 1.0)],
            weight: 1.0,
        }]);
        assert_eq!(clf.n_cells(), before);
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn classifier_serde_roundtrip() {
        let items = vec![
            TrainItem::labeled(vec![("robot".to_string(), 2.0)], "ai".to_string()),
            TrainItem::labeled(vec![("poisson".to_string(), 1.0)], "stats".to_string()),
        ];
        let clf = BornClassifier::fit(&items);
        let json = serde_json::to_string(&clf).unwrap();
        let back: BornClassifier<String, String> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_cells(), clf.n_cells());
        assert_eq!(back.n_classes(), clf.n_classes());
        for (j, k, w) in clf.corpus_entries() {
            assert_eq!(back.weight(j, k), w);
        }
        // The restored model still trains and deploys.
        let mut back = back;
        back.partial_fit(&items);
        assert!(back.deploy(HyperParams::default()).is_some());
    }
}
