//! # born — the Born classifier in pure Rust
//!
//! A sparse, exact implementation of the Born classifier of Guidotti &
//! Ferrara (NeurIPS 2022), the algorithm that the BornSQL paper ports to
//! SQL. This crate serves two roles in the reproduction:
//!
//! 1. **Oracle** — cross-validation target for the SQL implementation in the
//!    `bornsql` crate (they must agree to floating-point accuracy on every
//!    operation: fit, partial-fit, unlearn, deploy, predict, explain);
//! 2. **Native baseline** — an "ideal" in-process classifier for the runtime
//!    comparisons.
//!
//! ## Model
//!
//! Training (paper eq. 1) accumulates the unnormalized joint probability
//! `P[j][k] = Σ_n w_n·x_nj·y_nk / (Σ_j x_nj · Σ_k y_nk)`. Incremental
//! learning (eq. 3) is plain addition of the two parameter tensors; exact
//! unlearning (eq. 6) is incremental learning with negated sample weights.
//!
//! Inference (eqs. 8–11) normalizes `P` by class/feature marginals, weighs
//! features by one minus their normalized class-conditional entropy, and
//! superposes the evidence with Born's rule exponent `a`.
//!
//! ```
//! use born::{BornClassifier, HyperParams, TrainItem};
//!
//! let mut clf = BornClassifier::new();
//! clf.partial_fit(&[
//!     TrainItem::labeled(vec![("robot", 2.0), ("neural", 1.0)], "ai"),
//!     TrainItem::labeled(vec![("poisson", 1.0), ("variance", 1.0)], "stats"),
//! ]);
//! let model = clf.deploy(HyperParams::default()).unwrap();
//! let pred = model.predict(&[("robot", 1.0)]).unwrap();
//! assert_eq!(pred, "ai");
//! ```

#![forbid(unsafe_code)]

pub mod classifier;
pub mod metrics;

pub use classifier::{BornClassifier, DeployedModel, Explanation, HyperParams, TrainItem};
pub use metrics::{accuracy, confusion_counts, macro_prf, ClassMetrics};
