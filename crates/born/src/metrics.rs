//! Classification metrics: accuracy and macro-averaged precision / recall /
//! F1, as reported in the paper's Table 5.

use std::collections::BTreeMap;

/// Per-class precision / recall / F1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMetrics {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub support: usize,
}

/// Confusion counts per class: (true positives, false positives, false
/// negatives), keyed by class.
pub fn confusion_counts<K: Ord + Clone>(
    truth: &[K],
    predicted: &[K],
) -> BTreeMap<K, (usize, usize, usize)> {
    assert_eq!(
        truth.len(),
        predicted.len(),
        "truth and prediction lengths differ"
    );
    let mut counts: BTreeMap<K, (usize, usize, usize)> = BTreeMap::new();
    for (t, p) in truth.iter().zip(predicted) {
        counts.entry(t.clone()).or_default();
        counts.entry(p.clone()).or_default();
        if t == p {
            counts.get_mut(t).expect("inserted above").0 += 1;
        } else {
            counts.get_mut(p).expect("inserted above").1 += 1;
            counts.get_mut(t).expect("inserted above").2 += 1;
        }
    }
    counts
}

/// Fraction of exact matches.
pub fn accuracy<K: PartialEq>(truth: &[K], predicted: &[K]) -> f64 {
    assert_eq!(truth.len(), predicted.len());
    if truth.is_empty() {
        return 0.0;
    }
    let hits = truth.iter().zip(predicted).filter(|(t, p)| t == p).count();
    hits as f64 / truth.len() as f64
}

/// Macro-averaged precision, recall, and F1 over all classes present in
/// either vector. Classes with zero predicted (or actual) instances
/// contribute zero precision (recall), following scikit-learn's
/// `zero_division=0` convention used by the paper's artifacts.
pub fn macro_prf<K: Ord + Clone>(truth: &[K], predicted: &[K]) -> ClassMetrics {
    let counts = confusion_counts(truth, predicted);
    let n = counts.len().max(1) as f64;
    let mut precision = 0.0;
    let mut recall = 0.0;
    let mut f1 = 0.0;
    for &(tp, fp, fn_) in counts.values() {
        let p = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let r = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        precision += p;
        recall += r;
        f1 += if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        };
    }
    ClassMetrics {
        precision: precision / n,
        recall: recall / n,
        f1: f1 / n,
        support: truth.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let t = vec!["a", "b", "a"];
        let m = macro_prf(&t, &t);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(accuracy(&t, &t), 1.0);
    }

    #[test]
    fn all_wrong_predictions() {
        let t = vec!["a", "a"];
        let p = vec!["b", "b"];
        let m = macro_prf(&t, &p);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(accuracy(&t, &p), 0.0);
    }

    #[test]
    fn binary_case_hand_checked() {
        // truth:   + + + -  -
        // pred:    + - + +  -
        let t = vec![1, 1, 1, 0, 0];
        let p = vec![1, 0, 1, 1, 0];
        let counts = confusion_counts(&t, &p);
        assert_eq!(counts[&1], (2, 1, 1)); // tp=2, fp=1, fn=1
        assert_eq!(counts[&0], (1, 1, 1));
        let m = macro_prf(&t, &p);
        // class 1: p = 2/3, r = 2/3; class 0: p = 1/2, r = 1/2
        assert!((m.precision - (2.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12);
        assert!((m.recall - (2.0 / 3.0 + 0.5) / 2.0).abs() < 1e-12);
        assert!((accuracy(&t, &p) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn class_never_predicted_gets_zero_precision() {
        let t = vec!["a", "b"];
        let p = vec!["a", "a"];
        let m = macro_prf(&t, &p);
        // class a: p=1/2, r=1; class b: p=0 (never predicted), r=0
        assert!((m.precision - 0.25).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let t: Vec<&str> = vec![];
        assert_eq!(accuracy(&t, &t), 0.0);
    }
}
