//! Property-based tests of the Born classifier's exactness guarantees
//! (paper Definitions 2.1 and 2.2).

use born::{BornClassifier, HyperParams, TrainItem};
use proptest::prelude::*;

type Item = TrainItem<u32, u8>;

/// Strategy: a sparse training item with up to 6 features from a vocabulary
/// of 20, up to 2 target classes out of 4, and a positive sample weight.
fn arb_item() -> impl Strategy<Value = Item> {
    let feature = (0u32..20, 1u32..5).prop_map(|(j, w)| (j, w as f64));
    let class = (0u8..4, 1u32..3).prop_map(|(k, w)| (k, w as f64));
    (
        prop::collection::vec(feature, 1..6),
        prop::collection::vec(class, 1..3),
        1u32..4,
    )
        .prop_map(|(x, y, w)| TrainItem {
            x,
            y,
            weight: w as f64,
        })
}

fn assert_same_model(a: &BornClassifier<u32, u8>, b: &BornClassifier<u32, u8>) {
    assert_eq!(a.n_cells(), b.n_cells(), "cell count differs");
    assert_eq!(a.n_classes(), b.n_classes(), "class count differs");
    for (j, k, w) in a.corpus_entries() {
        let other = b.weight(j, k);
        assert!(
            (w - other).abs() <= 1e-9 * (1.0 + w.abs()),
            "P[{j},{k}]: {w} vs {other}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 2/3: training in any batch split equals training all at once.
    #[test]
    fn incremental_learning_is_exact(
        items in prop::collection::vec(arb_item(), 1..30),
        split in 0usize..30,
    ) {
        let split = split.min(items.len());
        let full = BornClassifier::fit(&items);
        let mut inc = BornClassifier::new();
        inc.partial_fit(&items[..split]);
        inc.partial_fit(&items[split..]);
        assert_same_model(&full, &inc);
    }

    /// Eq. 5/6: unlearning a forget set equals retraining on the remainder.
    #[test]
    fn unlearning_is_exact(
        items in prop::collection::vec(arb_item(), 1..30),
        forget in 0usize..30,
    ) {
        let forget = forget.min(items.len());
        let mut clf = BornClassifier::fit(&items);
        clf.unlearn(&items[..forget]);
        let retrained = BornClassifier::fit(&items[forget..]);
        assert_same_model(&retrained, &clf);
    }

    /// Unlearning everything returns an empty model.
    #[test]
    fn unlearning_everything_empties_the_model(
        items in prop::collection::vec(arb_item(), 1..20),
    ) {
        let mut clf = BornClassifier::fit(&items);
        clf.unlearn(&items);
        prop_assert_eq!(clf.n_cells(), 0);
        prop_assert_eq!(clf.n_classes(), 0);
        prop_assert!(clf.deploy(HyperParams::default()).is_none());
    }

    /// Batch order does not matter (addition is commutative).
    #[test]
    fn batch_order_is_irrelevant(
        a in prop::collection::vec(arb_item(), 1..15),
        b in prop::collection::vec(arb_item(), 1..15),
    ) {
        let mut ab = BornClassifier::new();
        ab.partial_fit(&a);
        ab.partial_fit(&b);
        let mut ba = BornClassifier::new();
        ba.partial_fit(&b);
        ba.partial_fit(&a);
        assert_same_model(&ab, &ba);
    }

    /// predict_proba always yields a probability distribution.
    #[test]
    fn probabilities_are_a_distribution(
        items in prop::collection::vec(arb_item(), 1..20),
        query in prop::collection::vec((0u32..25, 1u32..5), 1..6),
    ) {
        let model = BornClassifier::fit(&items).deploy(HyperParams::default());
        prop_assume!(model.is_some());
        let model = model.unwrap();
        let x: Vec<(u32, f64)> = query.into_iter().map(|(j, w)| (j, w as f64)).collect();
        let proba = model.predict_proba(&x);
        let total: f64 = proba.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sums to {total}");
        for (_, p) in proba {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        }
    }

    /// The argmax of predict matches the argmax of predict_proba.
    #[test]
    fn predict_consistent_with_proba(
        items in prop::collection::vec(arb_item(), 1..20),
        query in prop::collection::vec((0u32..20, 1u32..5), 1..6),
    ) {
        let model = BornClassifier::fit(&items).deploy(HyperParams::default());
        prop_assume!(model.is_some());
        let model = model.unwrap();
        let x: Vec<(u32, f64)> = query.into_iter().map(|(j, w)| (j, w as f64)).collect();
        if let Some(pred) = model.predict(&x) {
            let proba = model.predict_proba(&x);
            let best = proba
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(k, _)| *k)
                .unwrap();
            let pred_p = proba.iter().find(|(k, _)| *k == pred).unwrap().1;
            let best_p = proba.iter().find(|(k, _)| *k == best).unwrap().1;
            // Ties may resolve differently; probabilities must agree.
            prop_assert!((pred_p - best_p).abs() < 1e-9);
        }
    }

    /// Scaling every x uniformly does not change the trained model
    /// (the per-item normalization divides it out).
    #[test]
    fn feature_scale_invariance_in_training(
        items in prop::collection::vec(arb_item(), 1..15),
        scale in 2u32..10,
    ) {
        let scaled: Vec<Item> = items
            .iter()
            .map(|i| TrainItem {
                x: i.x.iter().map(|(j, w)| (*j, w * scale as f64)).collect(),
                y: i.y.clone(),
                weight: i.weight,
            })
            .collect();
        let a = BornClassifier::fit(&items);
        let b = BornClassifier::fit(&scaled);
        assert_same_model(&a, &b);
    }

    /// Hyper-parameters do not affect training, only deployment: deploying
    /// the same corpus with different params yields the same feature/class
    /// support.
    #[test]
    fn deploy_support_is_param_independent(
        items in prop::collection::vec(arb_item(), 1..15),
        a in 1u32..5,
        h in 0u32..3,
    ) {
        let clf = BornClassifier::fit(&items);
        let m1 = clf.deploy(HyperParams::default()).unwrap();
        let m2 = clf
            .deploy(HyperParams::new(a as f64 / 2.0, 0.5, h as f64).unwrap())
            .unwrap();
        prop_assert_eq!(m1.n_weights(), m2.n_weights());
    }
}
