//! The BornSQL conformance sweep: every statement emitted by every dialect
//! for every operation must pass the engine's static semantic analyzer
//! against a shadow catalog — with zero query execution. This is the CI
//! gate for emitter changes: corrupting a template fails here with a
//! spanned diagnostic instead of failing at runtime deep inside a pipeline.

use bornsql::dialect::Dialect;
use bornsql::lint::{
    check_statement, emitted_statements, lint_all_dialects, normalize_for_engine, shadow_catalog,
};
use bornsql::spec::DataSpec;
use bornsql::sql::SqlGenerator;

const USER_SCHEMA: &[&str] = &[
    "CREATE TABLE docs (id INTEGER, body TEXT, label TEXT)",
    "CREATE TABLE meta (id INTEGER, tag TEXT, y INTEGER)",
];

fn base_spec() -> DataSpec {
    DataSpec::new("SELECT id AS n, 'w:' || body AS j, 1.0 AS w FROM docs")
        .with_targets("SELECT id AS n, label AS k, 1.0 AS w FROM docs")
}

/// Spec variants exercising every preprocessing shape of Section 3.1:
/// single/multi-arm `q_x`, with/without item filter `q_n` and sample
/// weights `q_w`.
fn spec_variants() -> Vec<(&'static str, DataSpec)> {
    vec![
        ("base", base_spec()),
        (
            "multi_arm",
            base_spec().with_features("SELECT id AS n, 't:' || tag AS j, 0.5 AS w FROM meta"),
        ),
        (
            "filtered",
            base_spec().with_items("SELECT id AS n FROM docs WHERE id <= 100"),
        ),
        (
            "weighted",
            base_spec().with_weights("SELECT id AS n, 2.0 AS w FROM docs"),
        ),
        (
            "full",
            base_spec()
                .with_features("SELECT id AS n, 't:' || tag AS j, 0.5 AS w FROM meta")
                .with_items("SELECT id AS n FROM docs WHERE id <= 100")
                .with_weights("SELECT id AS n, 2.0 AS w FROM docs"),
        ),
    ]
}

/// The exhaustive generator × dialect × operation sweep. Nothing executes:
/// only DDL builds the shadow catalog, and every generated statement goes
/// through `Database::check` alone.
#[test]
fn all_dialects_all_operations_pass_static_analysis() {
    let mut total = 0;
    for class_type in ["TEXT", "INTEGER"] {
        // An INTEGER class column comes from an integer-valued target query.
        let retarget = |spec: DataSpec| -> DataSpec {
            if class_type == "INTEGER" {
                DataSpec {
                    qy: Some("SELECT id AS n, y AS k, 1.0 AS w FROM meta".to_string()),
                    ..spec
                }
            } else {
                spec
            }
        };
        for (variant, spec) in spec_variants() {
            let spec = retarget(spec);
            let report = lint_all_dialects("m", class_type, &spec, USER_SCHEMA);
            assert!(
                report.is_clean(),
                "conformance failures for {class_type}/{variant}:\n{report}"
            );
            total += report.checked;
        }
    }
    // 4 dialects × 24 operations × 5 variants × 2 class types.
    assert_eq!(total, 4 * 24 * 5 * 2);
}

/// The shadow catalog never gains rows: the sweep is check-only.
#[test]
fn sweep_performs_no_execution() {
    let db = shadow_catalog("m", "TEXT", USER_SCHEMA).unwrap();
    let g = SqlGenerator::new("m", Dialect::Generic, "TEXT");
    let spec = base_spec();
    for (op, sql) in emitted_statements(&g, &spec) {
        check_statement(&db, &g, op, &sql).unwrap_or_else(|f| panic!("{op}: {}", f.rendered));
    }
    for table in ["m_corpus", "m_weights", "params", "docs"] {
        assert_eq!(
            db.table_rows(table).unwrap(),
            0,
            "lint sweep must not insert into {table}"
        );
    }
}

/// Corrupting an emitted query the way a template regression would (e.g.
/// dropping a column from a GROUP BY) fails the sweep with a spanned
/// diagnostic pointing into the generated SQL.
#[test]
fn corrupted_emitter_fails_with_spanned_diagnostic() {
    let db = shadow_catalog("m", "TEXT", USER_SCHEMA).unwrap();
    let g = SqlGenerator::new("m", Dialect::Generic, "TEXT");
    let spec = base_spec();

    // Drop `hw.k` from the score aggregation's GROUP BY.
    let sql = g.predict(&spec, true);
    assert!(
        sql.contains("GROUP BY x_nj.n, hw.k"),
        "emitter changed: {sql}"
    );
    let corrupted = sql.replace("GROUP BY x_nj.n, hw.k", "GROUP BY x_nj.n");
    let fail = check_statement(&db, &g, "predict_deployed", &corrupted)
        .expect_err("corrupted GROUP BY must be rejected");
    assert!(
        fail.message
            .contains("must appear in the GROUP BY clause or be used in an aggregate function"),
        "{}",
        fail.rendered
    );
    assert!(
        fail.rendered.contains('^'),
        "no caret snippet:\n{}",
        fail.rendered
    );

    // Misspell a join column.
    let sql = g.deploy();
    let corrupted = sql.replace("p_jk.j = p_j.j", "p_jk.jj = p_j.j");
    let fail = check_statement(&db, &g, "deploy", &corrupted)
        .expect_err("unknown column must be rejected");
    assert_eq!(fail.message, "unknown column 'p_jk.jj'");
    assert!(
        fail.rendered.contains('^'),
        "no caret snippet:\n{}",
        fail.rendered
    );

    // And the untouched statements still pass after the corruption attempts.
    check_statement(&db, &g, "predict_deployed", &g.predict(&spec, true)).unwrap();
    check_statement(&db, &g, "deploy", &g.deploy()).unwrap();
}

/// MySQL's upsert tail is the one non-executable fragment; normalization
/// must rewrite exactly it and nothing else, so the analyzed statement is
/// semantically identical.
#[test]
fn mysql_normalization_is_exact() {
    let g = SqlGenerator::new("m", Dialect::MySql, "TEXT");
    let sql = g.partial_fit(&base_spec(), 1.0);
    assert!(sql.contains("ON DUPLICATE KEY UPDATE w = m_corpus.w + VALUES(w)"));
    let normalized = normalize_for_engine(&g, &sql);
    assert!(normalized.contains("ON CONFLICT (j, k) DO UPDATE SET w = m_corpus.w + excluded.w"));
    assert!(!normalized.contains("ON DUPLICATE KEY"));
    // Everything before the tail is untouched.
    assert_eq!(
        sql.split("ON DUPLICATE").next().unwrap(),
        normalized
            .split("ON CONFLICT (j, k) DO UPDATE SET w = m_corpus.w")
            .next()
            .unwrap()
    );
}
