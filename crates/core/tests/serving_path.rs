//! Serving hot-path regression tests: a deployed model's `predict` query
//! must plan as an index-nested-loop join probing the weights table's `j`
//! index, and repeated serving calls must hit the engine's plan cache.

use bornsql::{BornSqlModel, DataSpec, ModelOptions};
use sqlengine::{Database, Value};

/// Hand-built corpus. Sized so the serving query clears the planner's cost
/// gates: 24 tokens × 3 classes = 72 weights cells (≥ the 64-row inner-side
/// floor for an index join), and `labels` carries a primary key on `n` so a
/// single-item `q_n` plans as a 1-key point lookup, keeping the probe-side
/// estimate small.
fn trained_model(db: &Database) -> BornSqlModel<'_, Database> {
    db.execute_script(
        "CREATE TABLE features (n INTEGER, term TEXT, cnt REAL);
         CREATE TABLE labels (n INTEGER, label TEXT, PRIMARY KEY (n));",
    )
    .unwrap();
    let classes = ["ai", "stats", "ops"];
    let mut frows = Vec::new();
    let mut lrows = Vec::new();
    for id in 0..60i64 {
        let class = classes[(id % 3) as usize];
        for t in 0..4 {
            let term = format!("{class}_tok{}", (id + t * 7) % 24);
            frows.push(vec![
                Value::Int(id + 1),
                Value::text(term.as_str()),
                Value::Float(1.0 + (t % 3) as f64),
            ]);
        }
        lrows.push(vec![Value::Int(id + 1), Value::text(class)]);
    }
    db.insert_rows("features", frows).unwrap();
    db.insert_rows("labels", lrows).unwrap();

    let model = BornSqlModel::create(db, "m", ModelOptions::default()).unwrap();
    let spec = DataSpec::new("SELECT n, term AS j, cnt AS w FROM features")
        .with_targets("SELECT n, label AS k, 1.0 AS w FROM labels");
    model.fit(&spec).unwrap();
    model
}

fn single_item_spec(id: i64) -> DataSpec {
    DataSpec::new("SELECT n, term AS j, cnt AS w FROM features")
        .with_items(format!("SELECT n FROM labels WHERE n = {id}"))
}

#[test]
fn deployed_predict_plans_an_index_scan_on_the_weights_table() {
    let db = Database::new();
    let model = trained_model(&db);
    model.deploy().unwrap();

    let sql = model.generator().predict(&single_item_spec(1), true);
    let plan = db.explain(&sql).unwrap();
    assert!(
        plan.contains("IndexScan m_weights_j (probed)"),
        "deployed predict should probe the weights index:\n{plan}"
    );
    assert!(
        plan.contains("IndexNestedLoopJoin"),
        "expected an index-nested-loop join in:\n{plan}"
    );
    // The abh CTE is a point lookup on the params primary key.
    assert!(
        plan.contains("IndexScan params.pk (1 keys)"),
        "params lookup should use the primary index:\n{plan}"
    );
}

#[test]
fn repeated_predict_hits_the_plan_cache() {
    let db = Database::new();
    let model = trained_model(&db);
    model.deploy().unwrap();

    let spec = single_item_spec(2);
    let first = model.predict(&spec).unwrap();
    let (hits_before, _) = db.plan_cache_stats();
    for _ in 0..5 {
        assert_eq!(model.predict(&spec).unwrap(), first);
    }
    let (hits_after, _) = db.plan_cache_stats();
    assert!(
        hits_after >= hits_before + 5,
        "expected ≥5 plan-cache hits from repeated predict, got {hits_before} → {hits_after}"
    );
}

#[test]
fn redeploy_invalidates_cached_serving_plans() {
    let db = Database::new();
    let model = trained_model(&db);
    model.deploy().unwrap();

    let spec = single_item_spec(3);
    let before = model.predict(&spec).unwrap();
    let version = db.catalog_version();
    // Redeploy rebuilds the weights table (DROP + CREATE + INSERT + CREATE
    // INDEX): every cached serving plan must be invalidated, not re-served.
    model.deploy().unwrap();
    assert!(
        db.catalog_version() > version,
        "redeploy must bump the catalog version"
    );
    assert_eq!(
        model.predict(&spec).unwrap(),
        before,
        "predictions must survive redeployment"
    );
}

#[test]
fn batched_predict_matches_per_item_predictions() {
    let db = Database::new();
    let model = trained_model(&db);
    model.deploy().unwrap();

    let spec = DataSpec::new("SELECT n, term AS j, cnt AS w FROM features");
    let items: Vec<Value> = (1..=16).map(Value::Int).collect();
    let batched = model.predict_batch(&spec, &items).unwrap();
    let mut singles = Vec::new();
    for id in 1..=16 {
        singles.extend(model.predict(&single_item_spec(id)).unwrap());
    }
    assert_eq!(batched, singles, "batch must equal the per-item loop");

    let batched = model.predict_proba_batch(&spec, &items).unwrap();
    let mut singles = Vec::new();
    for id in 1..=16 {
        singles.extend(model.predict_proba(&single_item_spec(id)).unwrap());
    }
    assert_eq!(batched.len(), singles.len());
    for ((n1, k1, p1), (n2, k2, p2)) in batched.iter().zip(singles.iter()) {
        assert_eq!((n1, k1), (n2, k2));
        assert!((p1 - p2).abs() < 1e-12, "{n1}/{k1}: {p1} vs {p2}");
    }
}

#[test]
fn batched_predict_rejects_bad_item_lists() {
    let db = Database::new();
    let model = trained_model(&db);
    let spec = DataSpec::new("SELECT n, term AS j, cnt AS w FROM features");
    assert!(model.predict_batch(&spec, &[]).is_err());
    assert!(model
        .predict_batch(&spec, &[Value::Int(1), Value::Null])
        .is_err());
}

#[test]
fn index_scans_do_not_change_predictions() {
    let indexed_db = Database::new();
    let indexed = trained_model(&indexed_db);
    indexed.deploy().unwrap();

    let scan_db = Database::with_config(
        sqlengine::EngineConfig::default()
            .with_index_scans(false)
            .with_plan_cache(false),
    );
    let scanned = trained_model(&scan_db);
    scanned.deploy().unwrap();

    let batch = DataSpec::new("SELECT n, term AS j, cnt AS w FROM features")
        .with_items("SELECT n FROM labels WHERE n <= 20");
    assert_eq!(
        indexed.predict(&batch).unwrap(),
        scanned.predict(&batch).unwrap()
    );
    let proba_a = indexed.predict_proba(&batch).unwrap();
    let proba_b = scanned.predict_proba(&batch).unwrap();
    assert_eq!(proba_a.len(), proba_b.len());
    for ((n1, k1, p1), (n2, k2, p2)) in proba_a.iter().zip(proba_b.iter()) {
        assert_eq!((n1, k1), (n2, k2));
        assert!((p1 - p2).abs() < 1e-12, "{n1}/{k1}: {p1} vs {p2}");
    }
}
