//! Cross-validation of the SQL implementation against the pure-Rust oracle
//! (`born` crate): every operation — fit, partial-fit, unlearn, deploy,
//! predict, predict_proba, explain — must agree to floating-point accuracy.

use std::collections::BTreeMap;

use born::{BornClassifier, HyperParams, TrainItem};
use bornsql::{BornSqlModel, DataSpec, ModelOptions, Params};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlengine::{Database, Value};

/// A synthetic document: id, feature counts, label.
struct Doc {
    id: i64,
    features: Vec<(String, f64)>,
    label: String,
}

/// Generate a deterministic random corpus with class-conditional vocabulary.
fn random_docs(seed: u64, n: usize) -> Vec<Doc> {
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = ["ai", "stats", "ops"];
    let mut docs = Vec::with_capacity(n);
    for id in 0..n {
        let class = classes[rng.gen_range(0..classes.len())];
        let mut features: BTreeMap<String, f64> = BTreeMap::new();
        // Class-specific tokens plus shared noise tokens.
        for _ in 0..rng.gen_range(2..8) {
            let tok = if rng.gen_bool(0.7) {
                format!("{class}_tok{}", rng.gen_range(0..10))
            } else {
                format!("common_tok{}", rng.gen_range(0..6))
            };
            *features.entry(tok).or_insert(0.0) += rng.gen_range(1..4) as f64;
        }
        docs.push(Doc {
            id: id as i64 + 1,
            features: features.into_iter().collect(),
            label: class.to_string(),
        });
    }
    docs
}

/// Load docs into a `features(n, term, cnt)` + `labels(n, label)` schema.
fn load_db(docs: &[Doc]) -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE features (n INTEGER, term TEXT, cnt REAL);
         CREATE TABLE labels (n INTEGER, label TEXT);",
    )
    .unwrap();
    let mut frows = Vec::new();
    let mut lrows = Vec::new();
    for d in docs {
        for (t, c) in &d.features {
            frows.push(vec![Value::Int(d.id), Value::text(t), Value::Float(*c)]);
        }
        lrows.push(vec![Value::Int(d.id), Value::text(&d.label)]);
    }
    db.insert_rows("features", frows).unwrap();
    db.insert_rows("labels", lrows).unwrap();
    db
}

fn spec() -> DataSpec {
    DataSpec::new("SELECT n, term AS j, cnt AS w FROM features")
        .with_targets("SELECT n, label AS k, 1.0 AS w FROM labels")
}

fn oracle_items(docs: &[Doc]) -> Vec<TrainItem<String, String>> {
    docs.iter()
        .map(|d| TrainItem::labeled(d.features.clone(), d.label.clone()))
        .collect()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

/// Compare the SQL corpus with the oracle tensor cell by cell.
fn assert_corpus_matches(model: &BornSqlModel<Database>, oracle: &BornClassifier<String, String>) {
    let sql_corpus = model.corpus().unwrap();
    assert_eq!(sql_corpus.len(), oracle.n_cells(), "cell counts differ");
    for (j, k, w) in &sql_corpus {
        let (Value::Str(j), Value::Str(k)) = (j, k) else {
            panic!("unexpected key types")
        };
        let expected = oracle.weight(&j.to_string(), &k.to_string());
        assert!(close(*w, expected), "P[{j},{k}] = {w}, oracle {expected}");
    }
}

#[test]
fn fit_matches_oracle() {
    let docs = random_docs(7, 60);
    let db = load_db(&docs);
    let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
    model.fit(&spec()).unwrap();
    let oracle = BornClassifier::fit(&oracle_items(&docs));
    assert_corpus_matches(&model, &oracle);
    assert_eq!(model.n_features().unwrap(), oracle.n_features());
    assert_eq!(model.n_classes().unwrap(), oracle.n_classes());
}

#[test]
fn incremental_fit_matches_batch_and_oracle() {
    let docs = random_docs(13, 80);
    let db = load_db(&docs);
    let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
    // Three incremental batches by id ranges.
    for (lo, hi) in [(1, 30), (31, 55), (56, 80)] {
        let batch = spec().with_items(format!(
            "SELECT n FROM labels WHERE n BETWEEN {lo} AND {hi}"
        ));
        model.partial_fit(&batch).unwrap();
    }
    let oracle = BornClassifier::fit(&oracle_items(&docs));
    assert_corpus_matches(&model, &oracle);
}

#[test]
fn unlearning_matches_retrained_oracle() {
    let docs = random_docs(21, 70);
    let db = load_db(&docs);
    let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
    model.fit(&spec()).unwrap();
    // Forget items 50..=70 (e.g. a GDPR deletion request).
    let forget = spec().with_items("SELECT n FROM labels WHERE n >= 50");
    model.unlearn(&forget).unwrap();
    let kept: Vec<Doc> = docs.into_iter().filter(|d| d.id < 50).collect();
    let oracle = BornClassifier::fit(&oracle_items(&kept));
    assert_corpus_matches(&model, &oracle);
}

#[test]
fn predictions_match_oracle_deployed_and_undeployed() {
    let docs = random_docs(42, 100);
    let db = load_db(&docs);
    let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
    let train = spec().with_items("SELECT n FROM labels WHERE n <= 80");
    model.fit(&train).unwrap();

    let oracle_model = {
        let items: Vec<_> = oracle_items(&docs).into_iter().take(80).collect();
        BornClassifier::fit(&items)
            .deploy(HyperParams::default())
            .unwrap()
    };

    let test = DataSpec::new("SELECT n, term AS j, cnt AS w FROM features")
        .with_items("SELECT n FROM labels WHERE n > 80");

    // Undeployed (on-the-fly weights).
    let undeployed: Vec<_> = model.predict(&test).unwrap();
    // Deployed (cached weights) must give identical answers.
    model.deploy().unwrap();
    let deployed: Vec<_> = model.predict(&test).unwrap();
    assert_eq!(
        undeployed, deployed,
        "deployment must not change predictions"
    );

    let mut n_checked = 0;
    for (n, k) in &deployed {
        let Value::Int(id) = n else { panic!() };
        let doc = docs.iter().find(|d| d.id == *id).unwrap();
        let expected = oracle_model.predict(&doc.features).unwrap();
        let Value::Str(k) = k else { panic!() };
        assert_eq!(k.as_ref(), expected, "item {id}");
        n_checked += 1;
    }
    assert!(n_checked >= 15, "expected most test items predictable");
}

#[test]
fn probabilities_match_oracle() {
    let docs = random_docs(5, 50);
    let db = load_db(&docs);
    let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
    model.fit(&spec()).unwrap();
    model.deploy().unwrap();

    let oracle_model = BornClassifier::fit(&oracle_items(&docs))
        .deploy(HyperParams::default())
        .unwrap();

    let test = DataSpec::new("SELECT n, term AS j, cnt AS w FROM features")
        .with_items("SELECT n FROM labels WHERE n <= 10");
    let proba = model.predict_proba(&test).unwrap();
    assert!(!proba.is_empty());

    // Group by item and compare against oracle's distribution restricted to
    // classes with evidence (SQL emits only those rows).
    let mut by_item: BTreeMap<i64, Vec<(String, f64)>> = BTreeMap::new();
    for (n, k, p) in proba {
        let (Value::Int(id), Value::Str(k)) = (n, k) else {
            panic!()
        };
        by_item.entry(id).or_default().push((k.to_string(), p));
    }
    for (id, sql_dist) in by_item {
        let doc = docs.iter().find(|d| d.id == id).unwrap();
        let oracle_dist: BTreeMap<String, f64> = oracle_model
            .predict_proba(&doc.features)
            .into_iter()
            .collect();
        let total: f64 = sql_dist.iter().map(|(_, p)| p).sum();
        assert!(close(total, 1.0), "item {id} distribution sums to {total}");
        for (k, p) in sql_dist {
            let expected = oracle_dist[&k];
            assert!(close(p, expected), "item {id} class {k}: {p} vs {expected}");
        }
    }
}

#[test]
fn global_explanation_matches_oracle() {
    let docs = random_docs(99, 40);
    let db = load_db(&docs);
    let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
    model.fit(&spec()).unwrap();
    model.deploy().unwrap();

    let oracle_model = BornClassifier::fit(&oracle_items(&docs))
        .deploy(HyperParams::default())
        .unwrap();
    let oracle_global: BTreeMap<(String, String), f64> = oracle_model
        .explain_global()
        .into_iter()
        .map(|(j, k, w)| ((j, k), w))
        .collect();

    let sql_global = model.explain_global(None).unwrap();
    assert_eq!(sql_global.len(), oracle_global.len());
    for (j, k, w) in sql_global {
        let (Value::Str(j), Value::Str(k)) = (j, k) else {
            panic!()
        };
        let expected = oracle_global[&(j.to_string(), k.to_string())];
        assert!(close(w, expected), "HW[{j},{k}] = {w}, oracle {expected}");
    }
}

#[test]
fn local_explanation_matches_oracle() {
    let docs = random_docs(31, 40);
    let db = load_db(&docs);
    let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
    model.fit(&spec()).unwrap();
    model.deploy().unwrap();

    let oracle_model = BornClassifier::fit(&oracle_items(&docs))
        .deploy(HyperParams::default())
        .unwrap();

    let test = DataSpec::new("SELECT n, term AS j, cnt AS w FROM features")
        .with_items("SELECT n FROM labels WHERE n IN (3, 7)");
    let sql_local = model.explain_local(&test, None).unwrap();

    let items: Vec<(Vec<(String, f64)>, f64)> = docs
        .iter()
        .filter(|d| d.id == 3 || d.id == 7)
        .map(|d| (d.features.clone(), 1.0))
        .collect();
    let oracle_local: BTreeMap<(String, String), f64> = oracle_model
        .explain_local(&items)
        .into_iter()
        .map(|(j, k, w)| ((j, k), w))
        .collect();

    assert_eq!(sql_local.len(), oracle_local.len());
    for (j, k, w) in sql_local {
        let (Value::Str(j), Value::Str(k)) = (j, k) else {
            panic!()
        };
        let expected = oracle_local[&(j.to_string(), k.to_string())];
        assert!(
            close(w, expected),
            "local[{j},{k}] = {w}, oracle {expected}"
        );
    }
}

#[test]
fn nondefault_hyperparams_match_oracle() {
    let docs = random_docs(77, 50);
    let db = load_db(&docs);
    let params = Params {
        a: 1.0,
        b: 0.3,
        h: 2.0,
    };
    let model = BornSqlModel::create(
        &db,
        "m",
        ModelOptions {
            params,
            ..Default::default()
        },
    )
    .unwrap();
    model.fit(&spec()).unwrap();
    model.deploy().unwrap();

    let oracle_model = BornClassifier::fit(&oracle_items(&docs))
        .deploy(HyperParams::new(1.0, 0.3, 2.0).unwrap())
        .unwrap();

    let test = DataSpec::new("SELECT n, term AS j, cnt AS w FROM features")
        .with_items("SELECT n FROM labels WHERE n <= 20");
    for (n, k) in model.predict(&test).unwrap() {
        let (Value::Int(id), Value::Str(k)) = (n, k) else {
            panic!()
        };
        let doc = docs.iter().find(|d| d.id == id).unwrap();
        assert_eq!(k.as_ref(), oracle_model.predict(&doc.features).unwrap());
    }
}

#[test]
fn sample_weights_match_oracle() {
    let docs = random_docs(111, 40);
    let db = load_db(&docs);
    // Weight = 2.0 for even ids, 1.0 for odd.
    db.execute("CREATE TABLE sweights (n INTEGER, w REAL)")
        .unwrap();
    let rows: Vec<Vec<Value>> = docs
        .iter()
        .map(|d| {
            vec![
                Value::Int(d.id),
                Value::Float(if d.id % 2 == 0 { 2.0 } else { 1.0 }),
            ]
        })
        .collect();
    db.insert_rows("sweights", rows).unwrap();

    let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
    model
        .fit(&spec().with_weights("SELECT n, w FROM sweights"))
        .unwrap();

    let items: Vec<TrainItem<String, String>> = docs
        .iter()
        .map(|d| TrainItem {
            x: d.features.clone(),
            y: vec![(d.label.clone(), 1.0)],
            weight: if d.id % 2 == 0 { 2.0 } else { 1.0 },
        })
        .collect();
    let oracle = BornClassifier::fit(&items);
    assert_corpus_matches(&model, &oracle);
}

#[test]
fn hyperparameter_retuning_without_retraining() {
    // Paper §2.2.1: changing (a, b, h) must not require retraining —
    // only redeployment.
    let docs = random_docs(55, 40);
    let db = load_db(&docs);
    let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
    model.fit(&spec()).unwrap();
    let cells_before = model.corpus_cells().unwrap();

    model
        .set_params(Params {
            a: 2.0,
            b: 0.0,
            h: 0.0,
        })
        .unwrap();
    model.deploy().unwrap();
    assert_eq!(model.corpus_cells().unwrap(), cells_before);

    let oracle_model = BornClassifier::fit(&oracle_items(&docs))
        .deploy(HyperParams::new(2.0, 0.0, 0.0).unwrap())
        .unwrap();
    let test = DataSpec::new("SELECT n, term AS j, cnt AS w FROM features")
        .with_items("SELECT n FROM labels WHERE n <= 15");
    for (n, k) in model.predict(&test).unwrap() {
        let (Value::Int(id), Value::Str(k)) = (n, k) else {
            panic!()
        };
        let doc = docs.iter().find(|d| d.id == id).unwrap();
        assert_eq!(k.as_ref(), oracle_model.predict(&doc.features).unwrap());
    }
}

#[test]
fn multilabel_targets_match_oracle() {
    // The paper's q_y remark: an item may carry several categories with
    // equal weight; training mass splits across them (eq. 1 denominator).
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE f (n INTEGER, j TEXT, w REAL);
         CREATE TABLE y (n INTEGER, k TEXT, w REAL);
         INSERT INTO f VALUES (1, 'a', 2.0), (1, 'b', 1.0), (2, 'b', 1.0);
         INSERT INTO y VALUES (1, 'k1', 1.0), (1, 'k2', 1.0), (2, 'k2', 1.0);",
    )
    .unwrap();
    let model = BornSqlModel::create(&db, "ml", ModelOptions::default()).unwrap();
    model
        .fit(&DataSpec::new("SELECT n, j, w FROM f").with_targets("SELECT n, k, w FROM y"))
        .unwrap();

    let oracle = BornClassifier::fit(&[
        TrainItem {
            x: vec![("a".to_string(), 2.0), ("b".to_string(), 1.0)],
            y: vec![("k1".to_string(), 1.0), ("k2".to_string(), 1.0)],
            weight: 1.0,
        },
        TrainItem {
            x: vec![("b".to_string(), 1.0)],
            y: vec![("k2".to_string(), 1.0)],
            weight: 1.0,
        },
    ]);
    assert_corpus_matches(&model, &oracle);
    // Spot-check a cell by hand: item 1 denominator = (2+1)·(1+1) = 6.
    assert!((oracle.weight(&"a".to_string(), &"k1".to_string()) - 2.0 / 6.0).abs() < 1e-12);
}

#[test]
fn weighted_targets_match_oracle() {
    // Unequal target weights distribute mass proportionally.
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE f (n INTEGER, j TEXT, w REAL);
         CREATE TABLE y (n INTEGER, k TEXT, w REAL);
         INSERT INTO f VALUES (1, 'a', 1.0);
         INSERT INTO y VALUES (1, 'k1', 3.0), (1, 'k2', 1.0);",
    )
    .unwrap();
    let model = BornSqlModel::create(&db, "wt", ModelOptions::default()).unwrap();
    model
        .fit(&DataSpec::new("SELECT n, j, w FROM f").with_targets("SELECT n, k, w FROM y"))
        .unwrap();
    let oracle = BornClassifier::fit(&[TrainItem {
        x: vec![("a".to_string(), 1.0)],
        y: vec![("k1".to_string(), 3.0), ("k2".to_string(), 1.0)],
        weight: 1.0,
    }]);
    assert_corpus_matches(&model, &oracle);
    assert!((oracle.weight(&"a".to_string(), &"k1".to_string()) - 0.75).abs() < 1e-12);
}
