//! Golden tests for the generated SQL text, per dialect.
//!
//! These are the portability artifact: the exact statements BornSQL would
//! ship to PostgreSQL, MySQL, and SQLite. The golden strings double as
//! documentation — each one corresponds to a listing in the paper's
//! Section 3 — and pin the generator against accidental drift.

use bornsql::{DataSpec, Dialect, SqlGenerator};

fn generator(dialect: Dialect) -> SqlGenerator {
    SqlGenerator::new("scopus", dialect, "INTEGER")
}

fn paper_spec() -> DataSpec {
    DataSpec::new("SELECT id as n, 'pubname:' || pubname as j, 1.0 as w FROM publication")
        .with_features("SELECT pubid as n, 'authid:' || authid as j, 1.0 as w FROM pub_author")
        .with_targets("SELECT id as n, asjc / 100 AS k, 1.0 AS w FROM publication")
        .with_items("SELECT id as n FROM publication WHERE id % 10 <= 0")
}

#[test]
fn generic_partial_fit_golden() {
    let sql = generator(Dialect::Generic).partial_fit(&paper_spec(), 1.0);
    let expected = "INSERT INTO scopus_corpus (j, k, w) WITH \
n_n AS (SELECT id as n FROM publication WHERE id % 10 <= 0), \
x_nj AS (SELECT qx.n AS n, qx.j AS j, qx.w AS w FROM (SELECT id as n, 'pubname:' || pubname as j, 1.0 as w FROM publication) AS qx, n_n WHERE qx.n = n_n.n \
UNION ALL \
SELECT qx.n AS n, qx.j AS j, qx.w AS w FROM (SELECT pubid as n, 'authid:' || authid as j, 1.0 as w FROM pub_author) AS qx, n_n WHERE qx.n = n_n.n), \
y_nk AS (SELECT qy.n AS n, qy.k AS k, qy.w AS w FROM (SELECT id as n, asjc / 100 AS k, 1.0 AS w FROM publication) AS qy, n_n WHERE qy.n = n_n.n), \
xy_njk AS (SELECT x_nj.n AS n, x_nj.j AS j, y_nk.k AS k, x_nj.w * y_nk.w AS w FROM x_nj, y_nk WHERE x_nj.n = y_nk.n), \
xy_n AS (SELECT n, SUM(w) AS w FROM xy_njk GROUP BY n), \
p_jk AS (SELECT xy_njk.j AS j, xy_njk.k AS k, SUM(1.0 * xy_njk.w / xy_n.w) AS w FROM xy_njk, xy_n WHERE xy_njk.n = xy_n.n GROUP BY xy_njk.j, xy_njk.k) \
SELECT j, k, w FROM p_jk \
ON CONFLICT (j, k) DO UPDATE SET w = scopus_corpus.w + excluded.w";
    assert_eq!(sql, expected);
}

#[test]
fn mysql_partial_fit_golden_tail() {
    let sql = generator(Dialect::MySql).partial_fit(&paper_spec(), 1.0);
    assert!(
        sql.ends_with("ON DUPLICATE KEY UPDATE w = scopus_corpus.w + VALUES(w)"),
        "got tail: …{}",
        &sql[sql.len().saturating_sub(80)..]
    );
    assert!(!sql.contains("ON CONFLICT"));
}

#[test]
fn sqlite_matches_generic_for_training() {
    // SQLite shares the Generic/PostgreSQL upsert syntax and POW name.
    let a = generator(Dialect::Generic).partial_fit(&paper_spec(), 1.0);
    let b = generator(Dialect::Sqlite).partial_fit(&paper_spec(), 1.0);
    assert_eq!(a, b);
}

#[test]
fn postgres_deploy_golden() {
    let sql = generator(Dialect::Postgres).deploy();
    let expected = "INSERT INTO scopus_weights (j, k, w) WITH \
abh AS (SELECT a, b, h FROM params WHERE model = 'scopus'), \
p_jk AS (SELECT j, k, w FROM scopus_corpus WHERE w > 0.0), \
p_j AS (SELECT j, SUM(w) AS w FROM p_jk GROUP BY j), \
p_k AS (SELECT k, SUM(w) AS w FROM p_jk GROUP BY k), \
w_jk AS (SELECT p_jk.j AS j, p_jk.k AS k, p_jk.w / (POWER(p_k.w, b) * POWER(p_j.w, 1.0 - b)) AS w FROM p_jk, p_j, p_k, abh WHERE p_jk.j = p_j.j AND p_jk.k = p_k.k), \
w_j AS (SELECT j, SUM(w) AS w FROM w_jk GROUP BY j), \
h_jk AS (SELECT w_jk.j AS j, w_jk.k AS k, w_jk.w / w_j.w AS w FROM w_jk, w_j WHERE w_jk.j = w_j.j), \
n_k AS (SELECT COUNT(DISTINCT k) AS n FROM p_jk), \
h_j AS (SELECT h_jk.j AS j, CASE WHEN n_k.n <= 1 THEN 1.0 ELSE CASE WHEN 1.0 + SUM(h_jk.w * LN(h_jk.w)) / LN(n_k.n) < 0.0 THEN 0.0 ELSE 1.0 + SUM(h_jk.w * LN(h_jk.w)) / LN(n_k.n) END END AS w FROM h_jk, n_k GROUP BY h_jk.j, n_k.n), \
hw_jk AS (SELECT w_jk.j AS j, w_jk.k AS k, POWER(h_j.w, h) * POWER(w_jk.w, a) AS w FROM w_jk, h_j, abh WHERE w_jk.j = h_j.j) \
SELECT j, k, w FROM hw_jk";
    assert_eq!(sql, expected);
}

#[test]
fn generic_predict_deployed_golden() {
    let test_spec =
        DataSpec::new("SELECT id as n, 'pubname:' || pubname as j, 1.0 as w FROM publication")
            .with_items("SELECT 13 as n");
    let sql = generator(Dialect::Generic).predict(&test_spec, true);
    let expected = "WITH abh AS (SELECT a, b, h FROM params WHERE model = 'scopus'), \
n_n AS (SELECT 13 as n), \
x_nj AS (SELECT qx.n AS n, qx.j AS j, qx.w AS w FROM (SELECT id as n, 'pubname:' || pubname as j, 1.0 as w FROM publication) AS qx, n_n WHERE qx.n = n_n.n), \
hwx_nk AS (SELECT x_nj.n AS n, hw.k AS k, SUM(hw.w * POW(x_nj.w, a)) AS w FROM scopus_weights AS hw, x_nj, abh WHERE hw.j = x_nj.j GROUP BY x_nj.n, hw.k) \
SELECT r_nk.n AS n, r_nk.k AS k FROM (\
SELECT n, k, ROW_NUMBER() OVER (PARTITION BY n ORDER BY w DESC, k ASC) AS r FROM hwx_nk) AS r_nk \
WHERE r_nk.r = 1 ORDER BY n";
    assert_eq!(sql, expected);
}

#[test]
fn all_dialects_render_every_operation() {
    // Smoke test: every operation renders non-empty SQL in every dialect.
    let spec = paper_spec();
    for dialect in [
        Dialect::Generic,
        Dialect::Postgres,
        Dialect::MySql,
        Dialect::Sqlite,
    ] {
        let g = generator(dialect);
        let statements = [
            g.create_params_table(),
            g.create_corpus_table(),
            g.create_weights_table(),
            g.set_params(0.5, 1.0, 1.0),
            g.partial_fit(&spec, 1.0),
            g.partial_fit(&spec, -1.0),
            g.prune_corpus(),
            g.deploy(),
            g.predict(&spec, true),
            g.predict(&spec, false),
            g.predict_proba(&spec, true),
            g.explain_global(true, Some(10)),
            g.explain_local(&spec, true, Some(10)),
        ];
        for s in &statements {
            assert!(!s.is_empty());
            assert!(!s.contains("{"), "unexpanded template in {dialect:?}: {s}");
        }
    }
}
