//! Per-model serving telemetry: model lifecycle events and predict traffic
//! recorded by the engine registry and queryable as `sys.born_models`.

use bornsql::{BornSqlModel, DataSpec, ModelOptions};
use sqlengine::{Database, Value};

fn trained_model(db: &Database) -> BornSqlModel<'_, Database> {
    db.execute_script(
        "CREATE TABLE features (n INTEGER, term TEXT, cnt REAL);
         CREATE TABLE labels (n INTEGER, label TEXT, PRIMARY KEY (n));",
    )
    .unwrap();
    let classes = ["ai", "stats"];
    let mut frows = Vec::new();
    let mut lrows = Vec::new();
    for id in 0..20i64 {
        let class = classes[(id % 2) as usize];
        for t in 0..3 {
            frows.push(vec![
                Value::Int(id + 1),
                Value::text(format!("{class}_tok{}", (id + t) % 8)),
                Value::Float(1.0 + t as f64),
            ]);
        }
        lrows.push(vec![Value::Int(id + 1), Value::text(class)]);
    }
    db.insert_rows("features", frows).unwrap();
    db.insert_rows("labels", lrows).unwrap();

    let model = BornSqlModel::create(db, "m", ModelOptions::default()).unwrap();
    let spec = DataSpec::new("SELECT n, term AS j, cnt AS w FROM features")
        .with_targets("SELECT n, label AS k, 1.0 AS w FROM labels");
    model.fit(&spec).unwrap();
    model
}

fn all_items_spec() -> DataSpec {
    DataSpec::new("SELECT n, term AS j, cnt AS w FROM features").with_items("SELECT n FROM labels")
}

#[test]
fn predict_traffic_shows_up_in_sys_born_models() {
    let db = Database::new();
    let model = trained_model(&db);
    for _ in 0..3 {
        model.predict(&all_items_spec()).unwrap();
    }

    let r = db
        .query(
            "SELECT model, deployed, predict_calls, rows_returned, fit_batches \
             FROM sys.born_models",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::text("m"));
    assert_eq!(r.rows[0][1], Value::Int(0), "not deployed yet");
    assert_eq!(r.rows[0][2], Value::Int(3));
    assert_eq!(r.rows[0][3], Value::Int(60), "3 predicts × 20 items");
    assert_eq!(
        r.rows[0][4],
        Value::Int(1),
        "fit runs one partial_fit batch"
    );

    // Latency histogram columns carry real observations.
    let mean = db
        .query_scalar("SELECT predict_mean_us FROM sys.born_models WHERE model = 'm'")
        .unwrap();
    let Value::Float(mean) = mean else {
        panic!("expected float, got {mean:?}")
    };
    assert!(mean > 0.0);
}

#[test]
fn lifecycle_events_update_deploy_and_unlearn_counters() {
    let db = Database::new();
    let model = trained_model(&db);

    model.deploy().unwrap();
    let d = db
        .query_scalar("SELECT deployed FROM sys.born_models WHERE model = 'm'")
        .unwrap();
    assert_eq!(d, Value::Int(1));

    model.undeploy().unwrap();
    let d = db
        .query_scalar("SELECT deployed FROM sys.born_models WHERE model = 'm'")
        .unwrap();
    assert_eq!(d, Value::Int(0));

    let forget = DataSpec::new("SELECT n, term AS j, cnt AS w FROM features")
        .with_targets("SELECT n, label AS k, 1.0 AS w FROM labels")
        .with_items("SELECT n FROM labels WHERE n = 1");
    model.unlearn(&forget).unwrap();
    let u = db
        .query_scalar("SELECT unlearn_calls FROM sys.born_models WHERE model = 'm'")
        .unwrap();
    assert_eq!(u, Value::Int(1));
}

#[test]
fn batched_predict_records_one_serving_request() {
    let db = Database::new();
    let model = trained_model(&db);
    let spec = DataSpec::new("SELECT n, term AS j, cnt AS w FROM features");
    let items: Vec<Value> = (1..=20).map(Value::Int).collect();
    model.predict_batch(&spec, &items).unwrap();

    let r = db
        .query("SELECT predict_calls, rows_returned FROM sys.born_models")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(
        r.rows[0][0],
        Value::Int(1),
        "one batch = one serving request"
    );
    assert_eq!(
        r.rows[0][1],
        Value::Int(20),
        "row count covers the whole batch"
    );
}

#[test]
fn predicts_on_a_telemetry_disabled_backend_record_nothing() {
    let db = Database::with_config(sqlengine::EngineConfig::default().with_telemetry(false));
    let model = trained_model(&db);
    model.predict(&all_items_spec()).unwrap();
    let r = db.query("SELECT * FROM sys.born_models").unwrap();
    assert!(r.rows.is_empty(), "disabled registry must stay empty");
}
