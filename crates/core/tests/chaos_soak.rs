//! Seeded chaos soak for resource governance & graceful degradation.
//!
//! Several threads hammer one durable engine — predictions, incremental
//! training, ad-hoc SQL — while a fault thread injects randomized transient
//! storage failures, under a memory budget, a statement timeout, and a
//! bounded admission gate, all at once. The invariants:
//!
//! * no thread panics and no thread hangs;
//! * every error is classified: transient conditions are `is_retryable()`,
//!   nothing escapes the taxonomy;
//! * no acked commit is lost — every successfully-acknowledged insert is
//!   present after crash recovery over the surviving files;
//! * after the backend heals, the system recovers: writes and predictions
//!   succeed again without reopening.
//!
//! The PRNG seed is printed (visible on failure under the default libtest
//! capture) so any failing run can be replayed exactly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bornsql::{BornSqlModel, DataSpec, ModelOptions};
use sqlengine::{Database, EngineConfig, FaultyIo, StorageIo, SyncPolicy, Value, WalRetry};

const SEED: u64 = 0xB0A7_5EED;

/// SplitMix-style deterministic PRNG; cheap enough to clone per thread.
#[derive(Clone)]
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn soak_config() -> EngineConfig {
    EngineConfig::default()
        .with_wal_sync(SyncPolicy::Always)
        .with_wal_retry(WalRetry {
            attempts: 4,
            backoff: Duration::from_millis(1),
        })
        .with_statement_timeout(Duration::from_secs(2))
        .with_memory_budget(32 * 1024 * 1024)
        .with_max_concurrent_statements(3)
        .with_admission_queue_depth(4)
}

/// Train + deploy the standard small corpus (no faults are armed yet).
fn trained_model(db: &Database) -> BornSqlModel<'_, Database> {
    db.execute_script(
        "CREATE TABLE features (n INTEGER, term TEXT, cnt REAL);
         CREATE TABLE labels (n INTEGER, label TEXT, PRIMARY KEY (n));",
    )
    .unwrap();
    let classes = ["ai", "stats", "ops"];
    let mut frows = Vec::new();
    let mut lrows = Vec::new();
    for id in 0..60i64 {
        let class = classes[(id % 3) as usize];
        for t in 0..4 {
            let term = format!("{class}_tok{}", (id + t * 7) % 24);
            frows.push(vec![
                Value::Int(id + 1),
                Value::text(term.as_str()),
                Value::Float(1.0 + (t % 3) as f64),
            ]);
        }
        lrows.push(vec![Value::Int(id + 1), Value::text(class)]);
    }
    db.insert_rows("features", frows).unwrap();
    db.insert_rows("labels", lrows).unwrap();

    let model = BornSqlModel::create(db, "m", ModelOptions::default()).unwrap();
    let spec = DataSpec::new("SELECT n, term AS j, cnt AS w FROM features")
        .with_targets("SELECT n, label AS k, 1.0 AS w FROM labels");
    model.fit(&spec).unwrap();
    model.deploy().unwrap();
    model
}

fn item_spec(id: i64) -> DataSpec {
    DataSpec::new("SELECT n, term AS j, cnt AS w FROM features")
        .with_items(format!("SELECT n FROM labels WHERE n = {id}"))
}

/// An engine error observed by a worker must belong to the taxonomy:
/// transient (retryable) — the only failures this all-valid workload can
/// legitimately hit under faults, load, budgets, and deadlines.
fn classify_engine(err: &sqlengine::EngineError, ctx: &str) {
    assert!(
        err.is_retryable(),
        "seed {SEED:#x}: non-classified {ctx} error: {err:?}"
    );
}

fn classify_born(err: &bornsql::BornSqlError, ctx: &str) {
    assert!(
        err.is_retryable(),
        "seed {SEED:#x}: non-classified {ctx} error: {err:?}"
    );
}

#[test]
fn chaos_soak_survives_randomized_transient_faults() {
    eprintln!("chaos soak seed: {SEED:#x} (fixed; edit SEED to explore)");

    let io = Arc::new(FaultyIo::new());
    let db = Database::open_with_io(Arc::clone(&io) as Arc<dyn StorageIo>, soak_config()).unwrap();
    trained_model(&db);
    db.execute("CREATE TABLE audit (id INTEGER PRIMARY KEY, src INTEGER)")
        .unwrap();

    let acked: Mutex<Vec<i64>> = Mutex::new(Vec::new());
    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let errors = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Fault thread: random bursts of transient storage failures with
        // random quiet gaps, healed for good at the end.
        s.spawn(|| {
            let mut rng = Rng(SEED ^ 0xFA);
            while !stop.load(Ordering::SeqCst) {
                io.arm_transient(1 + rng.below(3));
                std::thread::sleep(Duration::from_millis(1 + rng.below(8)));
                io.arm_transient(0);
                std::thread::sleep(Duration::from_millis(rng.below(5)));
            }
            io.arm_transient(0);
        });

        // Two serving threads: single-item predicts and explicit batches.
        for t in 0..2u64 {
            let ops = &ops;
            let errors = &errors;
            let db = &db;
            s.spawn(move || {
                let model = BornSqlModel::attach(db, "m", ModelOptions::default()).unwrap();
                let spec = DataSpec::new("SELECT n, term AS j, cnt AS w FROM features");
                let mut rng = Rng(SEED ^ t);
                for _ in 0..120 {
                    let r = if rng.below(2) == 0 {
                        model
                            .predict(&item_spec(1 + rng.below(60) as i64))
                            .map(|_| ())
                    } else {
                        let items: Vec<Value> = (0..1 + rng.below(4))
                            .map(|_| Value::Int(1 + rng.below(60) as i64))
                            .collect();
                        model.predict_batch(&spec, &items).map(|_| ())
                    };
                    ops.fetch_add(1, Ordering::Relaxed);
                    if let Err(e) = r {
                        errors.fetch_add(1, Ordering::Relaxed);
                        classify_born(&e, "predict");
                    }
                }
            });
        }

        // Incremental-training thread: partial_fit over random slices.
        {
            let ops = &ops;
            let errors = &errors;
            let db = &db;
            s.spawn(move || {
                let model = BornSqlModel::attach(db, "m", ModelOptions::default()).unwrap();
                let mut rng = Rng(SEED ^ 0x17);
                for _ in 0..40 {
                    let hi = 1 + rng.below(60);
                    let spec = DataSpec::new(format!(
                        "SELECT n, term AS j, cnt AS w FROM features WHERE n <= {hi}"
                    ))
                    .with_targets("SELECT n, label AS k, 1.0 AS w FROM labels");
                    ops.fetch_add(1, Ordering::Relaxed);
                    if let Err(e) = model.partial_fit(&spec) {
                        errors.fetch_add(1, Ordering::Relaxed);
                        classify_born(&e, "partial_fit");
                    }
                }
            });
        }

        // Ad-hoc writer: durable inserts; every Ok is an acked commit that
        // recovery must preserve.
        {
            let ops = &ops;
            let errors = &errors;
            let db = &db;
            let acked = &acked;
            s.spawn(move || {
                for id in 0..150i64 {
                    ops.fetch_add(1, Ordering::Relaxed);
                    match db.execute(&format!("INSERT INTO audit VALUES ({id}, 0)")) {
                        Ok(_) => acked.lock().unwrap().push(id),
                        Err(e) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            classify_engine(&e, "insert");
                        }
                    }
                }
            });
        }

        // Ad-hoc reader: aggregates (budget-charged operators) and metrics.
        {
            let ops = &ops;
            let errors = &errors;
            let db = &db;
            s.spawn(move || {
                let mut rng = Rng(SEED ^ 0x9D);
                for _ in 0..150 {
                    let sql = if rng.below(2) == 0 {
                        "SELECT term, COUNT(*), SUM(cnt) FROM features GROUP BY term"
                    } else {
                        "SELECT COUNT(*) FROM audit"
                    };
                    ops.fetch_add(1, Ordering::Relaxed);
                    if let Err(e) = db.query(sql) {
                        errors.fetch_add(1, Ordering::Relaxed);
                        classify_engine(&e, "read");
                    }
                }
            });
        }

        // Workers run to completion, then the fault thread is released.
        // (Scope join order: spawned threads are joined when the scope ends,
        // so flip the stop flag from a watcher once workers are done — the
        // worker handles are consumed by the scope, hence the flag dance.)
        let ops = &ops;
        let stop = &stop;
        s.spawn(move || {
            // 5 workers × their fixed iteration counts: poll until all ops
            // are in, then stop the fault thread.
            while ops.load(Ordering::Relaxed) < 120 + 120 + 40 + 150 + 150 {
                std::thread::sleep(Duration::from_millis(5));
            }
            stop.store(true, Ordering::SeqCst);
        });
    });

    let total_ops = ops.load(Ordering::Relaxed);
    let total_errors = errors.load(Ordering::Relaxed);
    eprintln!(
        "seed {SEED:#x}: {total_ops} ops, {total_errors} classified errors, \
         {} transient faults fired",
        io.transient_fired()
    );
    assert_eq!(total_ops, 120 + 120 + 40 + 150 + 150);
    assert!(
        total_errors < total_ops,
        "seed {SEED:#x}: everything failed — the gate or retry policy is broken"
    );

    // Recovery-after-heal, same process: the backend is healed (the fault
    // thread's last act), so a durable write and a predict must succeed.
    db.execute("INSERT INTO audit VALUES (100000, 1)").unwrap();
    {
        let model = BornSqlModel::attach(&db, "m", ModelOptions::default()).unwrap();
        assert!(
            !model.predict(&item_spec(1)).unwrap().is_empty(),
            "seed {SEED:#x}: healed predict returned nothing"
        );
    }

    // No lost acked commit: reopen from the surviving files and check every
    // acknowledged insert.
    let acked = acked.into_inner().unwrap();
    drop(db);
    let recovered = Database::open_with_io(
        Arc::new(sqlengine::MemIo::from_files(io.process_crash_files())) as Arc<dyn StorageIo>,
        soak_config(),
    )
    .unwrap();
    let present = recovered
        .query("SELECT id FROM audit")
        .unwrap()
        .rows
        .iter()
        .map(|r| match r[0] {
            Value::Int(id) => id,
            ref v => panic!("seed {SEED:#x}: bad audit id {v:?}"),
        })
        .collect::<std::collections::HashSet<i64>>();
    for id in &acked {
        assert!(
            present.contains(id),
            "seed {SEED:#x}: acked commit {id} lost after recovery \
             ({} acked, {} recovered)",
            acked.len(),
            present.len()
        );
    }
}
