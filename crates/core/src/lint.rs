//! BornSQL query-conformance linter: static analysis of every statement the
//! generator can emit, for every dialect, against a shadow catalog — with
//! zero query execution.
//!
//! BornSQL's contribution is machine-generated SQL, so a malformed template
//! or emitter drift would otherwise only surface as a runtime error deep in
//! a fit/predict pipeline. The linter instead renders the full
//! operation × dialect matrix and runs each statement through the engine's
//! semantic analyzer ([`sqlengine::Database::check`]): name resolution,
//! type inference, aggregate/window placement, and constant folding all
//! happen at lint time against the *expected* catalog shape, and any
//! failure carries a byte-span diagnostic pointing into the generated text.
//!
//! Non-executable dialect text (MySQL's upsert tail) is normalized to the
//! engine's equivalent syntax before checking, so the analyzed statement is
//! semantically identical to what the foreign engine would run.

use crate::dialect::Dialect;
use crate::spec::DataSpec;
use crate::sql::SqlGenerator;
use sqlengine::Database;

/// One statically rejected generated statement.
#[derive(Debug, Clone)]
pub struct LintFailure {
    pub dialect: &'static str,
    pub operation: &'static str,
    /// The analyzer's message.
    pub message: String,
    /// Message plus caret snippet into the generated SQL.
    pub rendered: String,
    /// The (normalized) statement that failed.
    pub sql: String,
}

/// Outcome of a conformance sweep.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Number of statements checked.
    pub checked: usize,
    pub failures: Vec<LintFailure>,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    fn merge(&mut self, other: LintReport) {
        self.checked += other.checked;
        self.failures.extend(other.failures);
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} statements checked, {} failure(s)",
            self.checked,
            self.failures.len()
        )?;
        for fail in &self.failures {
            writeln!(
                f,
                "[{} / {}] {}",
                fail.dialect, fail.operation, fail.rendered
            )?;
        }
        Ok(())
    }
}

/// Every operation the generator emits for a *trainable* spec (one that has
/// targets), paired with a stable operation name. Covers the whole paper
/// surface: schema management, fit, incremental fit, unlearning, deployment,
/// both inference paths (deployed and on-the-fly), explainability, and
/// introspection.
pub fn emitted_statements(g: &SqlGenerator, spec: &DataSpec) -> Vec<(&'static str, String)> {
    vec![
        ("create_params_table", g.create_params_table()),
        ("create_corpus_table", g.create_corpus_table()),
        ("create_weights_table", g.create_weights_table()),
        ("create_weights_index", g.create_weights_index()),
        ("create_corpus_index", g.create_corpus_index()),
        ("drop_weights_table", g.drop_weights_table()),
        ("drop_corpus_table", g.drop_corpus_table()),
        ("set_params", g.set_params(0.5, 1.0, 0.5)),
        ("get_params", g.get_params()),
        ("fit", g.partial_fit(spec, 1.0)),
        ("unlearn", g.partial_fit(spec, -1.0)),
        ("prune_corpus", g.prune_corpus()),
        ("deploy", g.deploy()),
        ("predict_deployed", g.predict(spec, true)),
        ("predict_undeployed", g.predict(spec, false)),
        ("predict_proba_deployed", g.predict_proba(spec, true)),
        ("predict_proba_undeployed", g.predict_proba(spec, false)),
        ("explain_global_deployed", g.explain_global(true, Some(10))),
        ("explain_global_undeployed", g.explain_global(false, None)),
        (
            "explain_local_deployed",
            g.explain_local(spec, true, Some(10)),
        ),
        (
            "explain_local_undeployed",
            g.explain_local(spec, false, None),
        ),
        ("count_corpus_cells", g.count_corpus_cells()),
        ("count_features", g.count_features()),
        ("count_classes", g.count_classes()),
    ]
}

/// Rewrite dialect-specific text the bundled engine cannot parse into the
/// engine's semantically equivalent form. Only MySQL's upsert tail differs;
/// `POWER` is accepted by the engine directly.
pub fn normalize_for_engine(g: &SqlGenerator, sql: &str) -> String {
    let mut out = sql.to_string();
    for table in [g.corpus_table(), g.weights_table()] {
        let mysql = format!("ON DUPLICATE KEY UPDATE w = {table}.w + VALUES(w)");
        let generic = format!("ON CONFLICT (j, k) DO UPDATE SET w = {table}.w + excluded.w");
        out = out.replace(&mysql, &generic);
    }
    out
}

/// Build the shadow catalog a deployed model of this shape would have:
/// the user's source tables plus `params`, `{model}_corpus`,
/// `{model}_weights`, and their indexes. Only DDL runs; no rows exist and
/// no generated query is ever executed.
pub fn shadow_catalog(
    model: &str,
    class_type: &'static str,
    user_schema: &[&str],
) -> sqlengine::Result<Database> {
    let db = Database::new();
    for ddl in user_schema {
        db.execute(ddl)?;
    }
    let g = SqlGenerator::new(model, Dialect::Generic, class_type);
    db.execute(&g.create_params_table())?;
    db.execute(&g.create_corpus_table())?;
    db.execute(&g.create_weights_table())?;
    db.execute(&g.create_weights_index())?;
    db.execute(&g.create_corpus_index())?;
    Ok(db)
}

/// Statically check one generated statement against a shadow catalog.
pub fn check_statement(
    db: &Database,
    g: &SqlGenerator,
    operation: &'static str,
    sql: &str,
) -> Result<(), LintFailure> {
    let normalized = normalize_for_engine(g, sql);
    match db.check(&normalized) {
        Ok(_) => Ok(()),
        Err(e) => Err(LintFailure {
            dialect: g.dialect.name(),
            operation,
            message: e.message().to_string(),
            rendered: e.display_with_source(&normalized),
            sql: normalized,
        }),
    }
}

/// Lint every operation of one generator against a shadow catalog built
/// from `user_schema`.
pub fn lint_generator(g: &SqlGenerator, spec: &DataSpec, user_schema: &[&str]) -> LintReport {
    let db =
        shadow_catalog(&g.model, g.class_type, user_schema).expect("shadow catalog DDL must apply");
    let mut report = LintReport::default();
    for (operation, sql) in emitted_statements(g, spec) {
        report.checked += 1;
        if let Err(fail) = check_statement(&db, g, operation, &sql) {
            report.failures.push(fail);
        }
    }
    report
}

/// The full conformance sweep: all four dialects × every operation, for one
/// model shape. This is the CI gate for emitter changes.
pub fn lint_all_dialects(
    model: &str,
    class_type: &'static str,
    spec: &DataSpec,
    user_schema: &[&str],
) -> LintReport {
    let mut report = LintReport::default();
    for dialect in [
        Dialect::Generic,
        Dialect::Postgres,
        Dialect::MySql,
        Dialect::Sqlite,
    ] {
        let g = SqlGenerator::new(model, dialect, class_type);
        report.merge(lint_generator(&g, spec, user_schema));
    }
    report
}
