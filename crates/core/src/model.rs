//! The BornSQL model orchestrator: issues the generated SQL against a
//! backend and exposes the paper's workflow (fit / partial-fit / unlearn /
//! deploy / predict / explain) as a typed Rust API.

use sqlengine::{QueryResult, Value};

use crate::dialect::Dialect;
use crate::error::{BornSqlError, Result};
use crate::spec::DataSpec;
use crate::sql::SqlGenerator;

/// Minimal SQL connection abstraction. BornSQL only ever needs "run a
/// statement" and "run a query" — everything else is plain SQL, which is the
/// paper's portability argument.
pub trait SqlBackend {
    fn execute_sql(&self, sql: &str) -> sqlengine::Result<usize>;
    fn query_sql(&self, sql: &str) -> sqlengine::Result<QueryResult>;

    /// The backend's telemetry registry, if it has one. Backends without
    /// observability (remote connections, test stubs) keep the default and
    /// pay nothing; serving metrics then simply don't accumulate.
    fn telemetry(&self) -> Option<&sqlengine::Telemetry> {
        None
    }
}

impl SqlBackend for sqlengine::Database {
    fn execute_sql(&self, sql: &str) -> sqlengine::Result<usize> {
        Ok(self.execute(sql)?.affected())
    }

    fn query_sql(&self, sql: &str) -> sqlengine::Result<QueryResult> {
        self.query(sql)
    }

    fn telemetry(&self) -> Option<&sqlengine::Telemetry> {
        // The inherent method shadows the trait one here and returns
        // `&Arc<Telemetry>`; deref to the registry itself.
        Some(sqlengine::Database::telemetry(self).as_ref())
    }
}

/// Hyper-parameters mirrored from the `born` crate (kept separate so the
/// SQL layer has no dependency on the oracle implementation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    pub a: f64,
    pub b: f64,
    pub h: f64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            a: 0.5,
            b: 1.0,
            h: 1.0,
        }
    }
}

/// Options for creating a model.
#[derive(Debug, Clone)]
pub struct ModelOptions {
    pub dialect: Dialect,
    /// SQL type of the class column (`"TEXT"` or `"INTEGER"`).
    pub class_type: &'static str,
    pub params: Params,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            dialect: Dialect::Generic,
            class_type: "TEXT",
            params: Params::default(),
        }
    }
}

/// One prediction row: item identifier and predicted class.
pub type Prediction = (Value, Value);
/// One probability row: item, class, probability.
pub type Probability = (Value, Value, f64);
/// One explanation row: feature, class, weight.
pub type Weight = (Value, Value, f64);

/// A BornSQL model bound to a backend connection.
///
/// All state lives in the database: the hyper-parameters in the `params`
/// table, the trained tensor in `{model}_corpus`, and (after deployment)
/// the cached weights in `{model}_weights`. Dropping this handle loses
/// nothing — reattach with [`BornSqlModel::attach`].
pub struct BornSqlModel<'c, C: SqlBackend> {
    conn: &'c C,
    gen: SqlGenerator,
}

impl<'c, C: SqlBackend> BornSqlModel<'c, C> {
    /// Create (or open) a model named `model` on `conn`, installing the
    /// `params` and `{model}_corpus` tables and writing the hyper-parameters.
    pub fn create(conn: &'c C, model: &str, options: ModelOptions) -> Result<Self> {
        validate_model_name(model)?;
        validate_params(options.params)?;
        if options.class_type != "TEXT" && options.class_type != "INTEGER" {
            return Err(BornSqlError::Config(format!(
                "class_type must be TEXT or INTEGER, got {}",
                options.class_type
            )));
        }
        let gen = SqlGenerator::new(model, options.dialect, options.class_type);
        let m = BornSqlModel { conn, gen };
        m.conn.execute_sql(&m.gen.create_params_table())?;
        m.conn.execute_sql(&m.gen.create_corpus_table())?;
        m.conn.execute_sql(&m.gen.create_corpus_index())?;
        m.set_params(options.params)?;
        if let Some(t) = m.conn.telemetry() {
            t.register_model(m.name());
        }
        Ok(m)
    }

    /// Reattach to an existing model without touching its state.
    pub fn attach(conn: &'c C, model: &str, options: ModelOptions) -> Result<Self> {
        validate_model_name(model)?;
        let m = BornSqlModel {
            conn,
            gen: SqlGenerator::new(model, options.dialect, options.class_type),
        };
        if let Some(t) = m.conn.telemetry() {
            t.register_model(m.name());
        }
        Ok(m)
    }

    pub fn name(&self) -> &str {
        &self.gen.model
    }

    /// Access the SQL generator (to inspect the exact statements issued).
    pub fn generator(&self) -> &SqlGenerator {
        &self.gen
    }

    /// SQL type of the class column (`TEXT` or `INTEGER`).
    pub fn class_type(&self) -> &'static str {
        self.gen.class_type
    }

    /// The backend connection this model is bound to.
    pub fn backend(&self) -> &C {
        self.conn
    }

    // ------------------------------------------------------------------
    // Hyper-parameters
    // ------------------------------------------------------------------

    /// Update hyper-parameters. No retraining required (paper §2.2.1), but a
    /// deployed weights table becomes stale — redeploy after changing them.
    pub fn set_params(&self, params: Params) -> Result<()> {
        validate_params(params)?;
        self.conn
            .execute_sql(&self.gen.set_params(params.a, params.b, params.h))?;
        Ok(())
    }

    pub fn params(&self) -> Result<Params> {
        let r = self.conn.query_sql(&self.gen.get_params())?;
        let row = r.rows.first().ok_or_else(|| {
            BornSqlError::State(format!("model '{}' has no params row", self.name()))
        })?;
        Ok(Params {
            a: value_f64(&row[0])?,
            b: value_f64(&row[1])?,
            h: value_f64(&row[2])?,
        })
    }

    // ------------------------------------------------------------------
    // Training / incremental learning / unlearning
    // ------------------------------------------------------------------

    /// Train from scratch: clears the corpus, then runs one incremental fit.
    pub fn fit(&self, spec: &DataSpec) -> Result<()> {
        self.conn.execute_sql(&self.gen.drop_corpus_table())?;
        self.conn.execute_sql(&self.gen.create_corpus_table())?;
        self.conn.execute_sql(&self.gen.create_corpus_index())?;
        self.partial_fit(spec)
    }

    /// Exact incremental learning (paper eq. 3): accumulate `P_jk` for the
    /// items selected by the spec into the corpus.
    pub fn partial_fit(&self, spec: &DataSpec) -> Result<()> {
        spec.validate_for_training().map_err(BornSqlError::Config)?;
        self.conn.execute_sql(&self.gen.partial_fit(spec, 1.0))?;
        if let Some(t) = self.conn.telemetry() {
            t.record_model_fit_batch(self.name());
        }
        Ok(())
    }

    /// Exact unlearning (paper eq. 6): subtract the selected items'
    /// contribution, then prune numerically-zero cells so the corpus matches
    /// a model retrained without them.
    pub fn unlearn(&self, spec: &DataSpec) -> Result<()> {
        spec.validate_for_training().map_err(BornSqlError::Config)?;
        self.conn.execute_sql(&self.gen.partial_fit(spec, -1.0))?;
        self.conn.execute_sql(&self.gen.prune_corpus())?;
        if let Some(t) = self.conn.telemetry() {
            t.record_model_unlearn(self.name());
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Deployment
    // ------------------------------------------------------------------

    /// Pre-compute and materialize `HW_jk` into `{model}_weights` to
    /// accelerate inference (paper Section 3.3 / 4.4). Also creates a
    /// secondary index on the weights `j` column — the serving-path join key
    /// — after the bulk insert, so index-aware engines can answer repeated
    /// `predict` calls with point lookups instead of full scans.
    pub fn deploy(&self) -> Result<()> {
        self.conn.execute_sql(&self.gen.drop_weights_table())?;
        self.conn.execute_sql(&self.gen.create_weights_table())?;
        self.conn.execute_sql(&self.gen.deploy())?;
        self.conn.execute_sql(&self.gen.create_weights_index())?;
        if let Some(t) = self.conn.telemetry() {
            t.set_model_deployed(self.name(), true);
        }
        Ok(())
    }

    /// Drop the cached weights; inference falls back to on-the-fly
    /// computation.
    pub fn undeploy(&self) -> Result<()> {
        self.conn.execute_sql(&self.gen.drop_weights_table())?;
        if let Some(t) = self.conn.telemetry() {
            t.set_model_deployed(self.name(), false);
        }
        Ok(())
    }

    /// Whether a deployed weights table exists. After reopening a persisted
    /// database this tells whether `predict` will use the cached weights or
    /// recompute from the corpus on the fly.
    pub fn is_deployed(&self) -> bool {
        self.deployed_flag()
    }

    /// Whether a deployed weights table exists (used to pick the inference
    /// path automatically).
    fn deployed_flag(&self) -> bool {
        self.conn
            .query_sql(&format!(
                "SELECT COUNT(*) FROM {}",
                self.gen.weights_table()
            ))
            .is_ok()
    }

    // ------------------------------------------------------------------
    // Inference
    // ------------------------------------------------------------------

    /// Classify the items selected by the spec: `(n, argmax_k u_k)` rows.
    /// Items with no feature known to the model produce no row.
    pub fn predict(&self, spec: &DataSpec) -> Result<Vec<Prediction>> {
        spec.validate_for_inference()
            .map_err(BornSqlError::Config)?;
        let sql = self.gen.predict(spec, self.deployed_flag());
        rows_to_predictions(self.timed_predict_query(&sql)?)
    }

    /// Class probabilities `(n, k, p)` for the selected items.
    pub fn predict_proba(&self, spec: &DataSpec) -> Result<Vec<Probability>> {
        spec.validate_for_inference()
            .map_err(BornSqlError::Config)?;
        let sql = self.gen.predict_proba(spec, self.deployed_flag());
        rows_to_probabilities(self.timed_predict_query(&sql)?)
    }

    /// Classify an explicit batch of item identifiers in one statement.
    ///
    /// The spec's `q_x` describes where features come from; `items` names the
    /// items to classify (replacing any `q_n` on the spec). The whole batch
    /// runs as a single query — one parse/plan and one weights scan per batch
    /// instead of per item — and is recorded as one serving request in
    /// telemetry. Results come back in item order (`ORDER BY n`); items with
    /// no feature known to the model produce no row.
    pub fn predict_batch(&self, spec: &DataSpec, items: &[Value]) -> Result<Vec<Prediction>> {
        spec.validate_for_inference()
            .map_err(BornSqlError::Config)?;
        let sql = self
            .gen
            .predict_batch(spec, self.deployed_flag(), items)
            .map_err(BornSqlError::Config)?;
        rows_to_predictions(self.timed_predict_query(&sql)?)
    }

    /// Batched variant of [`BornSqlModel::predict_proba`]: probabilities for
    /// an explicit batch of item identifiers in one statement.
    pub fn predict_proba_batch(
        &self,
        spec: &DataSpec,
        items: &[Value],
    ) -> Result<Vec<Probability>> {
        spec.validate_for_inference()
            .map_err(BornSqlError::Config)?;
        let sql = self
            .gen
            .predict_proba_batch(spec, self.deployed_flag(), items)
            .map_err(BornSqlError::Config)?;
        rows_to_probabilities(self.timed_predict_query(&sql)?)
    }

    /// Run one inference statement, recording it as a single serving request
    /// (with its row count) when the backend has telemetry enabled.
    fn timed_predict_query(&self, sql: &str) -> Result<QueryResult> {
        let started = self
            .conn
            .telemetry()
            .filter(|t| t.enabled())
            .map(|_| std::time::Instant::now());
        let r = self.conn.query_sql(sql)?;
        if let (Some(t), Some(at)) = (self.conn.telemetry(), started) {
            t.record_model_predict(self.name(), at.elapsed(), r.rows.len() as u64);
        }
        Ok(r)
    }

    // ------------------------------------------------------------------
    // Explainability
    // ------------------------------------------------------------------

    /// Global explanation: `(j, k, HW_jk)` sorted by descending weight.
    pub fn explain_global(&self, limit: Option<usize>) -> Result<Vec<Weight>> {
        let sql = self.gen.explain_global(self.deployed_flag(), limit);
        let r = self.conn.query_sql(&sql)?;
        rows_to_weights(r)
    }

    /// Local explanation for the items selected by the spec:
    /// `(j, k, HW_jk · z_j^a)` sorted by descending weight.
    pub fn explain_local(&self, spec: &DataSpec, limit: Option<usize>) -> Result<Vec<Weight>> {
        spec.validate_for_inference()
            .map_err(BornSqlError::Config)?;
        let sql = self.gen.explain_local(spec, self.deployed_flag(), limit);
        let r = self.conn.query_sql(&sql)?;
        rows_to_weights(r)
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Number of `(j, k)` cells in the trained corpus.
    pub fn corpus_cells(&self) -> Result<usize> {
        self.count(&self.gen.count_corpus_cells())
    }

    /// Number of distinct features in the corpus.
    pub fn n_features(&self) -> Result<usize> {
        self.count(&self.gen.count_features())
    }

    /// Number of distinct classes in the corpus.
    pub fn n_classes(&self) -> Result<usize> {
        self.count(&self.gen.count_classes())
    }

    /// Raw corpus rows `(j, k, P_jk)` (deterministic order).
    pub fn corpus(&self) -> Result<Vec<Weight>> {
        let r = self.conn.query_sql(&format!(
            "SELECT j, k, w FROM {} ORDER BY j, k",
            self.gen.corpus_table()
        ))?;
        rows_to_weights(r)
    }

    fn count(&self, sql: &str) -> Result<usize> {
        let r = self.conn.query_sql(sql)?;
        let v = r
            .scalar()
            .ok_or_else(|| BornSqlError::State("count query returned nothing".into()))?;
        match v {
            Value::Int(i) => Ok(*i as usize),
            other => Err(BornSqlError::State(format!(
                "count query returned non-integer {other}"
            ))),
        }
    }
}

fn rows_to_predictions(r: QueryResult) -> Result<Vec<Prediction>> {
    Ok(r.rows
        .into_iter()
        .map(|mut row| {
            let k = row.pop().expect("two columns");
            let n = row.pop().expect("two columns");
            (n, k)
        })
        .collect())
}

fn rows_to_probabilities(r: QueryResult) -> Result<Vec<Probability>> {
    r.rows
        .into_iter()
        .map(|mut row| {
            let w = value_f64(&row.pop().expect("three columns"))?;
            let k = row.pop().expect("three columns");
            let n = row.pop().expect("three columns");
            Ok((n, k, w))
        })
        .collect()
}

fn rows_to_weights(r: QueryResult) -> Result<Vec<Weight>> {
    r.rows
        .into_iter()
        .map(|mut row| {
            let w = value_f64(&row.pop().expect("three columns"))?;
            let k = row.pop().expect("three columns");
            let j = row.pop().expect("three columns");
            Ok((j, k, w))
        })
        .collect()
}

fn value_f64(v: &Value) -> Result<f64> {
    v.as_f64()
        .map_err(BornSqlError::from)?
        .ok_or_else(|| BornSqlError::State("unexpected NULL numeric value".into()))
}

/// Model names become table-name prefixes; restrict them to identifier
/// characters so generated SQL cannot be injected into.
fn validate_model_name(name: &str) -> Result<()> {
    let mut chars = name.chars();
    let ok = match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        }
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(BornSqlError::Config(format!(
            "model name '{name}' is not a valid SQL identifier"
        )))
    }
}

fn validate_params(p: Params) -> Result<()> {
    // NaN must fail every check, hence the negated comparisons.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(p.a > 0.0) {
        return Err(BornSqlError::Config(format!("a must be > 0, got {}", p.a)));
    }
    if !(0.0..=1.0).contains(&p.b) {
        return Err(BornSqlError::Config(format!(
            "b must be in [0, 1], got {}",
            p.b
        )));
    }
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(p.h >= 0.0) {
        return Err(BornSqlError::Config(format!("h must be ≥ 0, got {}", p.h)));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_name_validation() {
        assert!(validate_model_name("scopus").is_ok());
        assert!(validate_model_name("_m1").is_ok());
        assert!(validate_model_name("m'; DROP TABLE x; --").is_err());
        assert!(validate_model_name("1model").is_err());
        assert!(validate_model_name("").is_err());
    }

    #[test]
    fn params_validation() {
        assert!(validate_params(Params::default()).is_ok());
        assert!(validate_params(Params {
            a: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(validate_params(Params {
            b: 2.0,
            ..Default::default()
        })
        .is_err());
        assert!(validate_params(Params {
            h: -1.0,
            ..Default::default()
        })
        .is_err());
    }
}
