//! SQL generation: each method renders one of the paper's Section 3
//! operations as a single SQL statement built from Common Table Expressions
//! over sparse-tensor tables.
//!
//! Naming follows the paper: a tensor `T_njk` is a relation with columns
//! `(n, j, k, w)`. The CTE pipeline never materializes intermediate tensors
//! (on engines that pipeline CTEs).

use sqlengine::Value;

use crate::dialect::Dialect;
use crate::spec::DataSpec;

/// Statement generator for one model.
///
/// `model` is the table-name prefix identifying the model (the paper's
/// `{model}`); it must be a valid bare SQL identifier.
#[derive(Debug, Clone)]
pub struct SqlGenerator {
    pub model: String,
    pub dialect: Dialect,
    /// SQL column type for the class column `k` (`TEXT` or `INTEGER`).
    pub class_type: &'static str,
}

impl SqlGenerator {
    pub fn new(model: &str, dialect: Dialect, class_type: &'static str) -> Self {
        SqlGenerator {
            model: model.to_string(),
            dialect,
            class_type,
        }
    }

    pub fn corpus_table(&self) -> String {
        format!("{}_corpus", self.model)
    }

    pub fn weights_table(&self) -> String {
        format!("{}_weights", self.model)
    }

    // ------------------------------------------------------------------
    // Schema management
    // ------------------------------------------------------------------

    /// The global hyper-parameter table (paper Section 3.3): one row per
    /// model keyed by the model name.
    pub fn create_params_table(&self) -> String {
        "CREATE TABLE IF NOT EXISTS params (model TEXT PRIMARY KEY, a REAL, b REAL, h REAL)"
            .to_string()
    }

    /// `{model}_corpus (j, k, w)` holding the trained tensor `P_jk`.
    pub fn create_corpus_table(&self) -> String {
        format!(
            "CREATE TABLE IF NOT EXISTS {t} (j TEXT, k {kt}, w REAL, PRIMARY KEY (j, k))",
            t = self.corpus_table(),
            kt = self.class_type,
        )
    }

    /// `{model}_weights (j, k, w)` holding the deployed tensor `HW_jk`.
    pub fn create_weights_table(&self) -> String {
        format!(
            "CREATE TABLE IF NOT EXISTS {t} (j TEXT, k {kt}, w REAL, PRIMARY KEY (j, k))",
            t = self.weights_table(),
            kt = self.class_type,
        )
    }

    /// Secondary index on the weights table's `j` column. The serving hot
    /// path joins `{model}_weights` to `x_nj` on `j` (eq. 27), so deployment
    /// creates this index to let the engine pick an index-nested-loop join
    /// for small inference batches instead of hashing the whole table.
    pub fn create_weights_index(&self) -> String {
        format!(
            "CREATE INDEX IF NOT EXISTS {t}_j ON {t} (j)",
            t = self.weights_table()
        )
    }

    /// Secondary index on the corpus `(j, k)` pair, backing the point
    /// lookups issued by incremental fit / unlearning upserts.
    pub fn create_corpus_index(&self) -> String {
        format!(
            "CREATE INDEX IF NOT EXISTS {t}_jk ON {t} (j, k)",
            t = self.corpus_table()
        )
    }

    pub fn drop_weights_table(&self) -> String {
        format!("DROP TABLE IF EXISTS {}", self.weights_table())
    }

    pub fn drop_corpus_table(&self) -> String {
        format!("DROP TABLE IF EXISTS {}", self.corpus_table())
    }

    /// Upsert this model's hyper-parameters into `params`.
    pub fn set_params(&self, a: f64, b: f64, h: f64) -> String {
        format!(
            "INSERT INTO params (model, a, b, h) VALUES ('{m}', {a}, {b}, {h}) \
             ON CONFLICT (model) DO UPDATE SET a = excluded.a, b = excluded.b, h = excluded.h",
            m = self.model,
            a = fmt_f64(a),
            b = fmt_f64(b),
            h = fmt_f64(h),
        )
    }

    pub fn get_params(&self) -> String {
        format!(
            "SELECT a, b, h FROM params WHERE model = '{m}'",
            m = self.model
        )
    }

    // ------------------------------------------------------------------
    // Preprocessing CTEs (paper Section 3.1)
    // ------------------------------------------------------------------

    /// Render the preprocessing CTE list shared by training and inference:
    /// `n_n` (when `q_n` given), `x_nj`, and optionally `y_nk` / `w_n`.
    ///
    /// Each `q_x` arm is filtered by `q_n` *individually* before the
    /// `UNION ALL` (the optimization noted at the end of Section 3.1).
    fn preprocessing_ctes(
        &self,
        spec: &DataSpec,
        with_targets: bool,
        with_weights: bool,
    ) -> Vec<String> {
        let mut ctes = Vec::new();
        let filtered = |q: &str, alias: &str, cols: &str| -> String {
            match &spec.qn {
                Some(_) => {
                    format!("SELECT {cols} FROM ({q}) AS {alias}, n_n WHERE {alias}.n = n_n.n")
                }
                None => format!("SELECT {cols} FROM ({q}) AS {alias}"),
            }
        };
        if let Some(qn) = &spec.qn {
            ctes.push(format!("n_n AS ({qn})"));
        }
        let arms: Vec<String> = spec
            .qx
            .iter()
            .map(|q| filtered(q, "qx", "qx.n AS n, qx.j AS j, qx.w AS w"))
            .collect();
        ctes.push(format!("x_nj AS ({})", arms.join(" UNION ALL ")));
        if with_targets {
            let qy = spec.qy.as_deref().expect("validated by caller");
            ctes.push(format!(
                "y_nk AS ({})",
                filtered(qy, "qy", "qy.n AS n, qy.k AS k, qy.w AS w")
            ));
        }
        if with_weights {
            if let Some(qw) = &spec.qw {
                ctes.push(format!(
                    "w_n AS ({})",
                    filtered(qw, "qw", "qw.n AS n, qw.w AS w")
                ));
            }
        }
        ctes
    }

    // ------------------------------------------------------------------
    // Training (paper Section 3.2, eqs. 16–18)
    // ------------------------------------------------------------------

    /// One statement that computes `P_jk` from the spec and accumulates it
    /// into `{model}_corpus`. With `sign = -1.0` this is the exact
    /// unlearning statement (paper eq. 6).
    pub fn partial_fit(&self, spec: &DataSpec, sign: f64) -> String {
        let mut ctes = self.preprocessing_ctes(spec, true, true);
        // XY_njk = x_nj ⊗ y_nk restricted to matching n       (eq. 16)
        ctes.push(
            "xy_njk AS (SELECT x_nj.n AS n, x_nj.j AS j, y_nk.k AS k, \
             x_nj.w * y_nk.w AS w FROM x_nj, y_nk WHERE x_nj.n = y_nk.n)"
                .to_string(),
        );
        // XY_n = Σ_jk x_nj·y_nk                               (eq. 17)
        ctes.push("xy_n AS (SELECT n, SUM(w) AS w FROM xy_njk GROUP BY n)".to_string());
        // P_jk = Σ_n w_n·xy_njk / xy_n                        (eq. 18 / eq. 1)
        let sign = fmt_f64(sign);
        let p_jk = match &spec.qw {
            Some(_) => format!(
                "p_jk AS (SELECT xy_njk.j AS j, xy_njk.k AS k, \
                 SUM({sign} * w_n.w * xy_njk.w / xy_n.w) AS w \
                 FROM xy_njk, xy_n, w_n \
                 WHERE xy_njk.n = xy_n.n AND xy_njk.n = w_n.n \
                 GROUP BY xy_njk.j, xy_njk.k)"
            ),
            // Unit weights: skip the w_n join entirely (Section 4.2's noted
            // optimization).
            None => format!(
                "p_jk AS (SELECT xy_njk.j AS j, xy_njk.k AS k, \
                 SUM({sign} * xy_njk.w / xy_n.w) AS w \
                 FROM xy_njk, xy_n WHERE xy_njk.n = xy_n.n \
                 GROUP BY xy_njk.j, xy_njk.k)"
            ),
        };
        ctes.push(p_jk);
        format!(
            "INSERT INTO {t} (j, k, w) WITH {ctes} SELECT j, k, w FROM p_jk {upsert}",
            t = self.corpus_table(),
            ctes = ctes.join(", "),
            upsert = self.dialect.upsert_accumulate(&self.corpus_table()),
        )
    }

    /// Remove cells whose weight cancelled to numerical zero after
    /// unlearning, so the corpus matches a freshly retrained model.
    pub fn prune_corpus(&self) -> String {
        format!(
            "DELETE FROM {t} WHERE ABS(w) <= 0.000000000001",
            t = self.corpus_table()
        )
    }

    // ------------------------------------------------------------------
    // Deployment (paper Section 3.3, eqs. 19–26)
    // ------------------------------------------------------------------

    /// The CTE chain from `{model}_corpus` to the cached weights `HW_jk`.
    /// Shared by `deploy` (which materializes it) and by on-the-fly
    /// inference/explanations on an undeployed model.
    fn hw_ctes(&self) -> Vec<String> {
        let pow = self.dialect.pow();
        let corpus = self.corpus_table();
        vec![
            // ABH: the model's hyper-parameters                 (eq. 19)
            format!(
                "abh AS (SELECT a, b, h FROM params WHERE model = '{m}')",
                m = self.model
            ),
            // Only positive mass participates (transient float cancellation
            // during unlearning may leave tiny residue; retrained models
            // never contain it).
            format!("p_jk AS (SELECT j, k, w FROM {corpus} WHERE w > 0.0)"),
            // P_j = Σ_k P_jk                                     (eq. 20)
            "p_j AS (SELECT j, SUM(w) AS w FROM p_jk GROUP BY j)".to_string(),
            // P_k = Σ_j P_jk                                     (eq. 21)
            "p_k AS (SELECT k, SUM(w) AS w FROM p_jk GROUP BY k)".to_string(),
            // W_jk = P_jk / (P_k^b · P_j^(1-b))                  (eq. 22 / eq. 8)
            format!(
                "w_jk AS (SELECT p_jk.j AS j, p_jk.k AS k, \
                 p_jk.w / ({pow}(p_k.w, b) * {pow}(p_j.w, 1.0 - b)) AS w \
                 FROM p_jk, p_j, p_k, abh \
                 WHERE p_jk.j = p_j.j AND p_jk.k = p_k.k)"
            ),
            // W_j = Σ_k W_jk                                     (eq. 23)
            "w_j AS (SELECT j, SUM(w) AS w FROM w_jk GROUP BY j)".to_string(),
            // H_jk = W_jk / W_j                                  (eq. 24 / eq. 9)
            "h_jk AS (SELECT w_jk.j AS j, w_jk.k AS k, w_jk.w / w_j.w AS w \
             FROM w_jk, w_j WHERE w_jk.j = w_j.j)"
                .to_string(),
            // Number of classes for the entropy scale ln(Σ_k 1).
            "n_k AS (SELECT COUNT(DISTINCT k) AS n FROM p_jk)".to_string(),
            // H_j = 1 + Σ_k H_jk·ln(H_jk) / ln(n)               (eq. 25 / eq. 10)
            // Clamped at zero: float round-off can push the entropy a hair
            // past ln(n). A single-class model has no entropy scale; its
            // features are equally (un)informative (H_j = 1).
            "h_j AS (SELECT h_jk.j AS j, \
             CASE WHEN n_k.n <= 1 THEN 1.0 ELSE \
             CASE WHEN 1.0 + SUM(h_jk.w * LN(h_jk.w)) / LN(n_k.n) < 0.0 THEN 0.0 \
             ELSE 1.0 + SUM(h_jk.w * LN(h_jk.w)) / LN(n_k.n) END END AS w \
             FROM h_jk, n_k GROUP BY h_jk.j, n_k.n)"
                .to_string(),
            // HW_jk = H_j^h · W_jk^a                             (eq. 26)
            format!(
                "hw_jk AS (SELECT w_jk.j AS j, w_jk.k AS k, \
                 {pow}(h_j.w, h) * {pow}(w_jk.w, a) AS w \
                 FROM w_jk, h_j, abh WHERE w_jk.j = h_j.j)"
            ),
        ]
    }

    /// Materialize `HW_jk` into `{model}_weights` (run after
    /// `drop_weights_table` + `create_weights_table`).
    pub fn deploy(&self) -> String {
        format!(
            "INSERT INTO {t} (j, k, w) WITH {ctes} SELECT j, k, w FROM hw_jk",
            t = self.weights_table(),
            ctes = self.hw_ctes().join(", "),
        )
    }

    // ------------------------------------------------------------------
    // Inference (paper Section 3.4, eqs. 27–29)
    // ------------------------------------------------------------------

    /// CTE producing `hwx_nk` — the per-item class scores
    /// `Σ_j HW_jk · x_nj^a` (eq. 27) — from either the deployed weights
    /// table or the on-the-fly `hw_jk` chain.
    fn hwx_ctes(&self, spec: &DataSpec, deployed: bool) -> Vec<String> {
        let pow = self.dialect.pow();
        let mut ctes = Vec::new();
        if deployed {
            ctes.push(format!(
                "abh AS (SELECT a, b, h FROM params WHERE model = '{m}')",
                m = self.model
            ));
        } else {
            ctes.extend(self.hw_ctes());
        }
        ctes.extend(self.preprocessing_ctes(spec, false, false));
        let hw = if deployed {
            self.weights_table()
        } else {
            "hw_jk".to_string()
        };
        ctes.push(format!(
            "hwx_nk AS (SELECT x_nj.n AS n, hw.k AS k, \
             SUM(hw.w * {pow}(x_nj.w, a)) AS w \
             FROM {hw} AS hw, x_nj, abh \
             WHERE hw.j = x_nj.j GROUP BY x_nj.n, hw.k)"
        ));
        ctes
    }

    /// Classification: `argmax_k u_k^a` by `ROW_NUMBER` (Section 3.4).
    /// Ties break toward the smallest class, matching the Rust oracle.
    pub fn predict(&self, spec: &DataSpec, deployed: bool) -> String {
        let ctes = self.hwx_ctes(spec, deployed);
        format!(
            "WITH {ctes} SELECT r_nk.n AS n, r_nk.k AS k FROM (\
             SELECT n, k, ROW_NUMBER() OVER (PARTITION BY n ORDER BY w DESC, k ASC) AS r \
             FROM hwx_nk) AS r_nk WHERE r_nk.r = 1 ORDER BY n",
            ctes = ctes.join(", "),
        )
    }

    /// Normalized class probabilities `u_nk / Σ_k u_nk` (eqs. 28–29).
    pub fn predict_proba(&self, spec: &DataSpec, deployed: bool) -> String {
        let pow = self.dialect.pow();
        let mut ctes = self.hwx_ctes(spec, deployed);
        ctes.push(format!(
            "u_nk AS (SELECT n, k, {pow}(w, 1.0 / a) AS w FROM hwx_nk, abh)"
        ));
        ctes.push("u_n AS (SELECT n, SUM(w) AS w FROM u_nk GROUP BY n)".to_string());
        format!(
            "WITH {ctes} SELECT u_nk.n AS n, u_nk.k AS k, u_nk.w / u_n.w AS w \
             FROM u_nk, u_n WHERE u_nk.n = u_n.n ORDER BY n, k",
            ctes = ctes.join(", "),
        )
    }

    // ------------------------------------------------------------------
    // Batched inference
    // ------------------------------------------------------------------

    /// Classification for an explicit batch of item identifiers: one
    /// statement whose `q_n` enumerates the batch, so parse/sema/plan and
    /// the weights scan are paid once per batch instead of once per item.
    /// Any `q_n` already on the spec is replaced by the batch.
    pub fn predict_batch(
        &self,
        spec: &DataSpec,
        deployed: bool,
        items: &[Value],
    ) -> Result<String, String> {
        Ok(self.predict(&batch_spec(spec, items)?, deployed))
    }

    /// Batched variant of [`SqlGenerator::predict_proba`].
    pub fn predict_proba_batch(
        &self,
        spec: &DataSpec,
        deployed: bool,
        items: &[Value],
    ) -> Result<String, String> {
        Ok(self.predict_proba(&batch_spec(spec, items)?, deployed))
    }

    // ------------------------------------------------------------------
    // Explainability (paper Section 3.5, eqs. 30–32)
    // ------------------------------------------------------------------

    /// Global explanation: the weights `HW_jk` themselves.
    pub fn explain_global(&self, deployed: bool, limit: Option<usize>) -> String {
        let tail = limit.map(|l| format!(" LIMIT {l}")).unwrap_or_default();
        if deployed {
            format!(
                "SELECT j, k, w FROM {t} ORDER BY w DESC, j ASC, k ASC{tail}",
                t = self.weights_table()
            )
        } else {
            format!(
                "WITH {ctes} SELECT j, k, w FROM hw_jk ORDER BY w DESC, j ASC, k ASC{tail}",
                ctes = self.hw_ctes().join(", "),
            )
        }
    }

    /// Local explanation for the items selected by the spec:
    /// `HW_jk · z_j^a` with `z` the weighted average normalized feature
    /// vector (eq. 30).
    pub fn explain_local(&self, spec: &DataSpec, deployed: bool, limit: Option<usize>) -> String {
        let pow = self.dialect.pow();
        let mut ctes = Vec::new();
        if deployed {
            ctes.push(format!(
                "abh AS (SELECT a, b, h FROM params WHERE model = '{m}')",
                m = self.model
            ));
        } else {
            ctes.extend(self.hw_ctes());
        }
        ctes.extend(self.preprocessing_ctes(spec, false, true));
        // X_n = Σ_j x_nj                                        (eq. 31)
        ctes.push(
            "x_n AS (SELECT x_nj.n AS n, SUM(x_nj.w) AS w FROM x_nj GROUP BY x_nj.n)".to_string(),
        );
        // Z_j = Σ_n w_n·x_nj / X_n                              (eq. 32 / eq. 30)
        let z_j = match &spec.qw {
            Some(_) => "z_j AS (SELECT x_nj.j AS j, SUM(w_n.w * x_nj.w / x_n.w) AS w \
                 FROM x_nj, x_n, w_n WHERE x_nj.n = x_n.n AND x_nj.n = w_n.n \
                 GROUP BY x_nj.j)"
                .to_string(),
            None => "z_j AS (SELECT x_nj.j AS j, SUM(x_nj.w / x_n.w) AS w \
                 FROM x_nj, x_n WHERE x_nj.n = x_n.n GROUP BY x_nj.j)"
                .to_string(),
        };
        ctes.push(z_j);
        let hw = if deployed {
            self.weights_table()
        } else {
            "hw_jk".to_string()
        };
        let tail = limit.map(|l| format!(" LIMIT {l}")).unwrap_or_default();
        format!(
            "WITH {ctes} SELECT hw.j AS j, hw.k AS k, hw.w * {pow}(z_j.w, a) AS w \
             FROM {hw} AS hw, z_j, abh WHERE hw.j = z_j.j \
             ORDER BY w DESC, j ASC, k ASC{tail}",
            ctes = ctes.join(", "),
        )
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    pub fn count_corpus_cells(&self) -> String {
        format!("SELECT COUNT(*) FROM {}", self.corpus_table())
    }

    pub fn count_features(&self) -> String {
        format!("SELECT COUNT(DISTINCT j) FROM {}", self.corpus_table())
    }

    pub fn count_classes(&self) -> String {
        format!("SELECT COUNT(DISTINCT k) FROM {}", self.corpus_table())
    }
}

/// Clone `spec` with its `q_n` replaced by a query enumerating `items`.
fn batch_spec(spec: &DataSpec, items: &[Value]) -> Result<DataSpec, String> {
    let mut s = spec.clone();
    s.qn = Some(batch_items_query(items)?);
    Ok(s)
}

/// Render a batch of item identifiers as an item-selection query: a
/// `UNION ALL` of one-row `SELECT <literal> AS n` arms (the engine has no
/// standalone `VALUES` constructor). Each preprocessing arm then filters by
/// this `n_n` before concatenation, exactly like a user-supplied `q_n`.
pub fn batch_items_query(items: &[Value]) -> Result<String, String> {
    if items.is_empty() {
        return Err("batch inference requires at least one item identifier".into());
    }
    let arms: Vec<String> = items
        .iter()
        .map(|v| Ok(format!("SELECT {} AS n", value_literal(v)?)))
        .collect::<Result<_, String>>()?;
    Ok(arms.join(" UNION ALL "))
}

/// Render an item identifier as a SQL literal. Text is single-quoted with
/// embedded quotes doubled; NULL and non-finite floats are rejected because
/// they cannot name an item.
fn value_literal(v: &Value) -> Result<String, String> {
    match v {
        Value::Int(i) => Ok(i.to_string()),
        Value::Float(f) if f.is_finite() => Ok(fmt_f64(*f)),
        Value::Float(f) => Err(format!("item identifier {f} is not a finite number")),
        Value::Str(s) => Ok(format!("'{}'", s.replace('\'', "''"))),
        Value::Null => Err("item identifiers must not be NULL".into()),
    }
}

/// Format a float so it round-trips through the SQL lexer as a REAL (always
/// includes a decimal point or exponent).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.is_finite() {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(d: Dialect) -> SqlGenerator {
        SqlGenerator::new("m", d, "TEXT")
    }

    fn spec() -> DataSpec {
        DataSpec::new("SELECT id AS n, 'f:' || f AS j, 1.0 AS w FROM t")
            .with_targets("SELECT id AS n, y AS k, 1.0 AS w FROM t")
    }

    #[test]
    fn partial_fit_contains_paper_pipeline() {
        let sql = generator(Dialect::Generic).partial_fit(&spec(), 1.0);
        for fragment in [
            "INSERT INTO m_corpus (j, k, w)",
            "xy_njk AS",
            "xy_n AS",
            "p_jk AS",
            "GROUP BY xy_njk.j, xy_njk.k",
            "ON CONFLICT (j, k) DO UPDATE SET w = m_corpus.w + excluded.w",
        ] {
            assert!(sql.contains(fragment), "missing {fragment:?} in\n{sql}");
        }
        // Unit weights: no w_n join.
        assert!(!sql.contains("w_n"));
    }

    #[test]
    fn unlearn_is_negated_partial_fit() {
        let g = generator(Dialect::Generic);
        let fit = g.partial_fit(&spec(), 1.0);
        let unfit = g.partial_fit(&spec(), -1.0);
        assert!(fit.contains("SUM(1.0 *"));
        assert!(unfit.contains("SUM(-1.0 *"));
        assert_eq!(
            fit.replace("SUM(1.0 *", ""),
            unfit.replace("SUM(-1.0 *", "")
        );
    }

    #[test]
    fn qn_filters_each_arm_before_union() {
        let s = spec()
            .with_features("SELECT id AS n, 'g:' || g AS j, 1.0 AS w FROM u")
            .with_items("SELECT id AS n FROM t WHERE id <= 100");
        let sql = generator(Dialect::Generic).partial_fit(&s, 1.0);
        assert!(sql.contains("n_n AS (SELECT id AS n FROM t WHERE id <= 100)"));
        // Both arms filtered before UNION ALL.
        assert_eq!(sql.matches("qx.n = n_n.n").count(), 2);
        assert!(sql.contains("UNION ALL"));
    }

    #[test]
    fn qw_join_included_when_weights_given() {
        let s = spec().with_weights("SELECT id AS n, 2.0 AS w FROM t");
        let sql = generator(Dialect::Generic).partial_fit(&s, 1.0);
        assert!(sql.contains("w_n AS"));
        assert!(sql.contains("w_n.w * xy_njk.w / xy_n.w"));
    }

    #[test]
    fn deploy_follows_equations_19_to_26() {
        let sql = generator(Dialect::Generic).deploy();
        for fragment in [
            "abh AS (SELECT a, b, h FROM params WHERE model = 'm')",
            "p_j AS",
            "p_k AS",
            "w_jk AS",
            "w_j AS",
            "h_jk AS",
            "h_j AS",
            "hw_jk AS",
            "POW(p_k.w, b) * POW(p_j.w, 1.0 - b)",
            "LN(n_k.n)",
            "POW(h_j.w, h) * POW(w_jk.w, a)",
            "INSERT INTO m_weights (j, k, w)",
        ] {
            assert!(sql.contains(fragment), "missing {fragment:?} in\n{sql}");
        }
    }

    #[test]
    fn index_statements_name_by_table() {
        let g = generator(Dialect::Generic);
        assert_eq!(
            g.create_weights_index(),
            "CREATE INDEX IF NOT EXISTS m_weights_j ON m_weights (j)"
        );
        assert_eq!(
            g.create_corpus_index(),
            "CREATE INDEX IF NOT EXISTS m_corpus_jk ON m_corpus (j, k)"
        );
    }

    #[test]
    fn predict_uses_row_number_argmax() {
        let sql = generator(Dialect::Generic).predict(&spec(), true);
        assert!(sql.contains("ROW_NUMBER() OVER (PARTITION BY n ORDER BY w DESC, k ASC)"));
        assert!(sql.contains("FROM m_weights AS hw"));
        assert!(
            !sql.contains("p_jk AS"),
            "deployed path must not recompute weights"
        );
    }

    #[test]
    fn undeployed_predict_computes_weights_on_the_fly() {
        let sql = generator(Dialect::Generic).predict(&spec(), false);
        assert!(sql.contains("hw_jk AS"));
        assert!(sql.contains("FROM hw_jk AS hw"));
    }

    #[test]
    fn proba_normalizes_with_inverse_a_root() {
        let sql = generator(Dialect::Generic).predict_proba(&spec(), true);
        assert!(sql.contains("POW(w, 1.0 / a)"));
        assert!(sql.contains("u_nk.w / u_n.w"));
    }

    #[test]
    fn mysql_dialect_swaps_upsert() {
        let sql = generator(Dialect::MySql).partial_fit(&spec(), 1.0);
        assert!(sql.contains("ON DUPLICATE KEY UPDATE w = m_corpus.w + VALUES(w)"));
        assert!(!sql.contains("ON CONFLICT"));
    }

    #[test]
    fn postgres_dialect_uses_power() {
        let sql = generator(Dialect::Postgres).deploy();
        assert!(sql.contains("POWER(p_k.w, b)"));
        assert!(!sql.contains("POW(p_k.w, b)"));
    }

    #[test]
    fn explain_local_builds_average_vector() {
        let sql = generator(Dialect::Generic).explain_local(&spec(), true, Some(10));
        assert!(sql.contains("x_n AS"));
        assert!(sql.contains("z_j AS"));
        assert!(sql.contains("POW(z_j.w, a)"));
        assert!(sql.ends_with("LIMIT 10"));
    }

    #[test]
    fn batch_items_render_as_union_all_of_literals() {
        let q =
            batch_items_query(&[Value::Int(7), Value::text("it's"), Value::Float(2.5)]).unwrap();
        assert_eq!(
            q,
            "SELECT 7 AS n UNION ALL SELECT 'it''s' AS n UNION ALL SELECT 2.5 AS n"
        );
    }

    #[test]
    fn batch_rejects_null_nan_and_empty() {
        assert!(batch_items_query(&[]).is_err());
        assert!(batch_items_query(&[Value::Null]).is_err());
        assert!(batch_items_query(&[Value::Float(f64::NAN)]).is_err());
    }

    #[test]
    fn predict_batch_installs_items_as_qn() {
        let g = generator(Dialect::Generic);
        let sql = g
            .predict_batch(&spec(), true, &[Value::Int(1), Value::Int(2)])
            .unwrap();
        assert!(sql.contains("n_n AS (SELECT 1 AS n UNION ALL SELECT 2 AS n)"));
        // The batch filter applies to the feature arm before UNION ALL.
        assert!(sql.contains("qx.n = n_n.n"));
        // Batch replaces any user-supplied q_n.
        let s = spec().with_items("SELECT id AS n FROM t");
        let sql = g.predict_batch(&s, true, &[Value::Int(9)]).unwrap();
        assert!(!sql.contains("SELECT id AS n FROM t"));
        assert!(sql.contains("n_n AS (SELECT 9 AS n)"));
    }

    #[test]
    fn float_formatting_roundtrips() {
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(-1.0), "-1.0");
    }
}
