//! Inference and training on data *outside* the database (paper §7,
//! "External data").
//!
//! Items that never lived in the database can still be classified: their
//! feature rows are written to a temporary table, predicted, and the table
//! is dropped. Likewise, externally computed `P_jk` increments can be
//! merged into the corpus without importing the raw training data.

use crate::error::Result;
use crate::model::{BornSqlModel, Prediction, Probability, SqlBackend, Weight};
use crate::spec::DataSpec;

/// An external item: identifier plus sparse features.
pub type ExternalItem = (i64, Vec<(String, f64)>);

impl<'c, C: SqlBackend> BornSqlModel<'c, C> {
    fn with_external_table<T>(
        &self,
        items: &[ExternalItem],
        f: impl FnOnce(&DataSpec) -> Result<T>,
    ) -> Result<T> {
        let table = format!("{}_external_items", self.name());
        self.backend()
            .execute_sql(&format!("DROP TABLE IF EXISTS {table}"))?;
        self.backend()
            .execute_sql(&format!("CREATE TABLE {table} (n INTEGER, j TEXT, w REAL)"))?;
        let quote = |s: &str| s.replace('\'', "''");
        for chunk in items.chunks(256) {
            let mut values = Vec::new();
            for (id, features) in chunk {
                for (j, w) in features {
                    values.push(format!("({id}, '{}', {w})", quote(j)));
                }
            }
            if values.is_empty() {
                continue;
            }
            self.backend()
                .execute_sql(&format!("INSERT INTO {table} VALUES {}", values.join(", ")))?;
        }
        let spec = DataSpec::new(format!("SELECT n, j, w FROM {table}"));
        let result = f(&spec);
        self.backend().execute_sql(&format!("DROP TABLE {table}"))?;
        result
    }

    /// Classify items supplied from outside the database.
    pub fn predict_items(&self, items: &[ExternalItem]) -> Result<Vec<Prediction>> {
        self.with_external_table(items, |spec| self.predict(spec))
    }

    /// Class probabilities for external items.
    pub fn predict_proba_items(&self, items: &[ExternalItem]) -> Result<Vec<Probability>> {
        self.with_external_table(items, |spec| self.predict_proba(spec))
    }

    /// Local explanation for external items (uniform sample weights).
    pub fn explain_items(
        &self,
        items: &[ExternalItem],
        limit: Option<usize>,
    ) -> Result<Vec<Weight>> {
        self.with_external_table(items, |spec| self.explain_local(spec, limit))
    }

    /// Merge externally computed corpus increments `(j, k, ΔP_jk)` —
    /// training on data that never enters the database. Negative deltas
    /// unlearn.
    pub fn merge_corpus(&self, cells: &[(String, String, f64)]) -> Result<usize> {
        let quote = |s: &str| s.replace('\'', "''");
        let corpus = self.generator().corpus_table();
        let is_int = self.class_type() == "INTEGER";
        let mut n = 0;
        for chunk in cells.chunks(256) {
            let values: Vec<String> = chunk
                .iter()
                .map(|(j, k, w)| {
                    let k_lit = if is_int {
                        k.clone()
                    } else {
                        format!("'{}'", quote(k))
                    };
                    format!("('{}', {k_lit}, {w})", quote(j))
                })
                .collect();
            n += self.backend().execute_sql(&format!(
                "INSERT INTO {corpus} (j, k, w) VALUES {} {}",
                values.join(", "),
                self.generator().dialect.upsert_accumulate(&corpus),
            ))?;
        }
        // Clean numerically-cancelled cells, as unlearn does.
        self.backend()
            .execute_sql(&self.generator().prune_corpus())?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelOptions;
    use sqlengine::{Database, Value};

    fn trained() -> (Database, &'static str) {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE d (n INTEGER, j TEXT, w REAL);
             CREATE TABLE l (n INTEGER, k TEXT);
             INSERT INTO d VALUES (1, 'robot', 2.0), (2, 'poisson', 2.0);
             INSERT INTO l VALUES (1, 'ai'), (2, 'stats');",
        )
        .unwrap();
        (db, "ext")
    }

    #[test]
    fn external_items_are_classified_and_cleaned_up() {
        let (db, name) = trained();
        let model = BornSqlModel::create(&db, name, ModelOptions::default()).unwrap();
        model
            .fit(
                &DataSpec::new("SELECT n, j, w FROM d")
                    .with_targets("SELECT n, k AS k, 1.0 AS w FROM l"),
            )
            .unwrap();
        model.deploy().unwrap();

        let items: Vec<ExternalItem> = vec![
            (100, vec![("robot".into(), 1.0)]),
            (101, vec![("poisson".into(), 3.0)]),
        ];
        let preds = model.predict_items(&items).unwrap();
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].1, Value::text("ai"));
        assert_eq!(preds[1].1, Value::text("stats"));
        // Temp table is gone.
        assert!(!db.has_table("ext_external_items"));

        let proba = model.predict_proba_items(&items).unwrap();
        assert!(!proba.is_empty());
        let local = model.explain_items(&items[..1], Some(3)).unwrap();
        assert!(!local.is_empty());
    }

    #[test]
    fn merge_corpus_accumulates_and_prunes() {
        let (db, name) = trained();
        let model = BornSqlModel::create(&db, name, ModelOptions::default()).unwrap();
        model
            .merge_corpus(&[
                ("f1".into(), "k1".into(), 0.5),
                ("f1".into(), "k1".into(), 0.25),
                ("f2".into(), "k2".into(), 1.0),
            ])
            .unwrap();
        assert_eq!(model.corpus_cells().unwrap(), 2);
        let corpus = model.corpus().unwrap();
        let f1 = corpus
            .iter()
            .find(|(j, _, _)| j.to_string() == "f1")
            .unwrap();
        assert!((f1.2 - 0.75).abs() < 1e-12);
        // Negative delta unlearns the cell completely.
        model
            .merge_corpus(&[("f2".into(), "k2".into(), -1.0)])
            .unwrap();
        assert_eq!(model.corpus_cells().unwrap(), 1);
    }

    #[test]
    fn quotes_in_feature_names_are_escaped() {
        let (db, name) = trained();
        let model = BornSqlModel::create(&db, name, ModelOptions::default()).unwrap();
        model
            .merge_corpus(&[("it's".into(), "k'1".into(), 1.0)])
            .unwrap();
        model.deploy().unwrap();
        let preds = model
            .predict_items(&[(7, vec![("it's".into(), 1.0)])])
            .unwrap();
        assert_eq!(preds[0].1, Value::text("k'1"));
    }
}
