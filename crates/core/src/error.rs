//! Error type for the BornSQL layer.

use std::fmt;

/// Errors raised by BornSQL operations.
#[derive(Debug, Clone, PartialEq)]
pub enum BornSqlError {
    /// The underlying database reported an error.
    Database(sqlengine::EngineError),
    /// Invalid model name, hyper-parameters, or data specification.
    Config(String),
    /// An operation needed state that does not exist (e.g. predicting with
    /// an untrained model).
    State(String),
}

impl BornSqlError {
    /// True when the error describes a transient condition of the underlying
    /// engine (timeout, overload shed, memory-budget abort, WAL degradation)
    /// rather than a defect in the request: the same call can succeed if the
    /// caller backs off and retries. Configuration and state errors are
    /// never retryable. Delegates to [`sqlengine::EngineError::is_retryable`].
    pub fn is_retryable(&self) -> bool {
        match self {
            BornSqlError::Database(e) => e.is_retryable(),
            BornSqlError::Config(_) | BornSqlError::State(_) => false,
        }
    }
}

impl fmt::Display for BornSqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BornSqlError::Database(e) => write!(f, "database error: {e}"),
            BornSqlError::Config(m) => write!(f, "configuration error: {m}"),
            BornSqlError::State(m) => write!(f, "state error: {m}"),
        }
    }
}

impl std::error::Error for BornSqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BornSqlError::Database(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sqlengine::EngineError> for BornSqlError {
    fn from(e: sqlengine::EngineError) -> Self {
        BornSqlError::Database(e)
    }
}

pub type Result<T> = std::result::Result<T, BornSqlError>;
