//! Data specifications: the user-provided queries `q_x`, `q_y`, `q_w`, `q_n`
//! of the paper's Section 3.1.
//!
//! * `q_x` — one or more `SELECT` statements, each returning `(n, j, w)`
//!   rows of the sparse feature tensor `X_nj`. Passing each `SELECT`
//!   individually (rather than one big `UNION ALL`) lets BornSQL filter each
//!   arm by `q_n` *before* concatenation, exactly as the paper's
//!   implementation note prescribes.
//! * `q_y` — a `SELECT` returning `(n, k, w)` rows of the target tensor
//!   `Y_nk` (required for training, ignored for inference).
//! * `q_w` — optional `SELECT` returning `(n, w)` sample weights; defaults
//!   to unit weights (and the implementation skips the join entirely, the
//!   optimization the paper mentions).
//! * `q_n` — optional `SELECT` returning the identifiers of the items to
//!   use; when absent, all items are used.

/// The queries describing where training/inference data comes from.
#[derive(Debug, Clone, Default)]
pub struct DataSpec {
    pub qx: Vec<String>,
    pub qy: Option<String>,
    pub qw: Option<String>,
    pub qn: Option<String>,
}

impl DataSpec {
    /// Start a spec with a single feature query.
    pub fn new(qx: impl Into<String>) -> Self {
        DataSpec {
            qx: vec![qx.into()],
            ..Default::default()
        }
    }

    /// Add another feature query (combined with `UNION ALL` after per-arm
    /// filtering).
    pub fn with_features(mut self, qx: impl Into<String>) -> Self {
        self.qx.push(qx.into());
        self
    }

    /// Set the target query `q_y`.
    pub fn with_targets(mut self, qy: impl Into<String>) -> Self {
        self.qy = Some(qy.into());
        self
    }

    /// Set the sample-weight query `q_w`.
    pub fn with_weights(mut self, qw: impl Into<String>) -> Self {
        self.qw = Some(qw.into());
        self
    }

    /// Set the item-selection query `q_n`.
    pub fn with_items(mut self, qn: impl Into<String>) -> Self {
        self.qn = Some(qn.into());
        self
    }

    /// Validation used before SQL generation.
    pub fn validate_for_training(&self) -> Result<(), String> {
        if self.qx.is_empty() {
            return Err("training requires at least one q_x feature query".into());
        }
        if self.qy.is_none() {
            return Err("training requires a q_y target query".into());
        }
        Ok(())
    }

    pub fn validate_for_inference(&self) -> Result<(), String> {
        if self.qx.is_empty() {
            return Err("inference requires at least one q_x feature query".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let spec = DataSpec::new("SELECT id AS n, 'f:' || f AS j, 1.0 AS w FROM t")
            .with_features("SELECT id AS n, 'g:' || g AS j, 1.0 AS w FROM t")
            .with_targets("SELECT id AS n, y AS k, 1.0 AS w FROM t")
            .with_weights("SELECT id AS n, 1.0 AS w FROM t")
            .with_items("SELECT id AS n FROM t WHERE id <= 10");
        assert_eq!(spec.qx.len(), 2);
        assert!(spec.validate_for_training().is_ok());
        assert!(spec.validate_for_inference().is_ok());
    }

    #[test]
    fn training_requires_targets() {
        let spec = DataSpec::new("SELECT 1 AS n, 'a' AS j, 1.0 AS w");
        assert!(spec.validate_for_training().is_err());
        assert!(spec.validate_for_inference().is_ok());
    }

    #[test]
    fn empty_spec_invalid() {
        let spec = DataSpec::default();
        assert!(spec.validate_for_training().is_err());
        assert!(spec.validate_for_inference().is_err());
    }
}
