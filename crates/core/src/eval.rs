//! In-database evaluation and retraining-free hyper-parameter tuning.
//!
//! Evaluation stays inside the DBMS: predictions land in a temporary table
//! and accuracy / the confusion matrix are plain `GROUP BY` queries against
//! the truth labels. Tuning exploits the paper's §2.2.1 observation that
//! training does not depend on `(a, b, h)`: a grid search only re-deploys
//! and re-scores — the corpus is never recomputed.

use sqlengine::Value;

use crate::error::{BornSqlError, Result};
use crate::model::{BornSqlModel, Params, SqlBackend};
use crate::spec::DataSpec;

/// One confusion-matrix cell: (actual, predicted, count).
pub type ConfusionCell = (Value, Value, i64);

/// Evaluation output.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Fraction of evaluated items predicted correctly. Items whose features
    /// are entirely unknown to the model produce no prediction and count as
    /// wrong.
    pub accuracy: f64,
    pub n_items: usize,
    pub n_predicted: usize,
    pub confusion: Vec<ConfusionCell>,
}

impl<'c, C: SqlBackend> BornSqlModel<'c, C> {
    /// Evaluate the model on the items selected by `spec`, with truth labels
    /// provided by `qy` (a query returning `(n, k, w)` rows like the
    /// training `q_y`; weights are ignored, ties are not supported).
    pub fn evaluate(&self, spec: &DataSpec, qy: &str) -> Result<Evaluation> {
        spec.validate_for_inference()
            .map_err(BornSqlError::Config)?;
        let predictions = self.predict(spec)?;
        // Truth restricted to the same items when the spec filters by q_n.
        let truth_sql = match &spec.qn {
            Some(qn) => format!(
                "SELECT qy.n AS n, qy.k AS k FROM ({qy}) AS qy, ({qn}) AS sel WHERE qy.n = sel.n"
            ),
            None => format!("SELECT qy.n AS n, qy.k AS k FROM ({qy}) AS qy"),
        };
        let truth = self.backend().query_sql(&truth_sql)?;

        let mut predicted_by_item: std::collections::BTreeMap<String, Value> = Default::default();
        for (n, k) in predictions {
            predicted_by_item.insert(n.to_string(), k);
        }
        let mut hits = 0usize;
        let mut confusion: std::collections::BTreeMap<(String, String), (Value, Value, i64)> =
            Default::default();
        let n_items = truth.rows.len();
        for row in &truth.rows {
            let n = row[0].to_string();
            let actual = row[1].clone();
            let predicted = predicted_by_item.get(&n).cloned().unwrap_or(Value::Null);
            if actual.sql_eq(&predicted) == Some(true) {
                hits += 1;
            }
            let entry = confusion
                .entry((actual.to_string(), predicted.to_string()))
                .or_insert((actual, predicted, 0));
            entry.2 += 1;
        }
        Ok(Evaluation {
            accuracy: if n_items == 0 {
                0.0
            } else {
                hits as f64 / n_items as f64
            },
            n_items,
            n_predicted: predicted_by_item.len(),
            confusion: confusion.into_values().collect(),
        })
    }

    /// Grid-search `(a, b, h)` on a validation spec without retraining:
    /// for each candidate, update `params`, redeploy, and score. The best
    /// parameters are left installed (and deployed). Returns the best
    /// `(params, accuracy)`.
    ///
    /// This is the paper's §2.2.1 tuning procedure: the corpus is computed
    /// once; only the cached weights change per candidate.
    pub fn tune(&self, val_spec: &DataSpec, qy: &str, grid: &[Params]) -> Result<(Params, f64)> {
        if grid.is_empty() {
            return Err(BornSqlError::Config("empty tuning grid".into()));
        }
        let mut best: Option<(Params, f64)> = None;
        for &candidate in grid {
            self.set_params(candidate)?;
            self.deploy()?;
            let eval = self.evaluate(val_spec, qy)?;
            if best.is_none_or(|(_, acc)| eval.accuracy > acc) {
                best = Some((candidate, eval.accuracy));
            }
        }
        let (params, acc) = best.expect("non-empty grid");
        // Leave the winner installed and deployed.
        self.set_params(params)?;
        self.deploy()?;
        Ok((params, acc))
    }
}

/// A convenient default grid: the cross product of a ∈ {0.5, 1, 2},
/// b ∈ {0, 0.5, 1}, h ∈ {0, 1}.
pub fn default_grid() -> Vec<Params> {
    let mut grid = Vec::new();
    for &a in &[0.5, 1.0, 2.0] {
        for &b in &[0.0, 0.5, 1.0] {
            for &h in &[0.0, 1.0] {
                grid.push(Params { a, b, h });
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelOptions;
    use sqlengine::Database;

    fn setup() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE d (n INTEGER, j TEXT, w REAL);
             CREATE TABLE l (n INTEGER, k TEXT);",
        )
        .unwrap();
        // 40 items, two classes, clearly separated plus some noise.
        for i in 1..=40i64 {
            let class = if i % 2 == 0 { "even" } else { "odd" };
            db.execute(&format!(
                "INSERT INTO d VALUES ({i}, 'sig:{class}', 2.0), ({i}, 'noise:{}', 1.0)",
                i % 5
            ))
            .unwrap();
            db.execute(&format!("INSERT INTO l VALUES ({i}, '{class}')"))
                .unwrap();
        }
        db
    }

    fn spec() -> DataSpec {
        DataSpec::new("SELECT n, j, w FROM d").with_targets("SELECT n, k AS k, 1.0 AS w FROM l")
    }

    #[test]
    fn evaluate_reports_perfect_accuracy_on_separable_data() {
        let db = setup();
        let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
        model.fit(&spec()).unwrap();
        model.deploy().unwrap();
        let eval = model
            .evaluate(&spec(), "SELECT n, k AS k, 1.0 AS w FROM l")
            .unwrap();
        assert_eq!(eval.n_items, 40);
        assert!(eval.accuracy > 0.99, "accuracy {}", eval.accuracy);
        // Confusion matrix: only diagonal cells.
        assert!(eval
            .confusion
            .iter()
            .all(|(a, p, _)| a.sql_eq(p) == Some(true)));
    }

    #[test]
    fn evaluate_respects_item_filter() {
        let db = setup();
        let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
        model.fit(&spec()).unwrap();
        model.deploy().unwrap();
        let filtered = spec().with_items("SELECT n FROM l WHERE n <= 10");
        let eval = model
            .evaluate(&filtered, "SELECT n, k AS k, 1.0 AS w FROM l")
            .unwrap();
        assert_eq!(eval.n_items, 10);
    }

    #[test]
    fn tune_finds_a_winner_and_leaves_it_installed() {
        let db = setup();
        let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
        model.fit(&spec()).unwrap();
        let grid = [
            Params {
                a: 0.5,
                b: 1.0,
                h: 1.0,
            },
            Params {
                a: 2.0,
                b: 0.0,
                h: 0.0,
            },
        ];
        let (best, acc) = model
            .tune(&spec(), "SELECT n, k AS k, 1.0 AS w FROM l", &grid)
            .unwrap();
        assert!(acc > 0.9);
        assert_eq!(model.params().unwrap(), best);
    }

    #[test]
    fn empty_grid_is_an_error() {
        let db = setup();
        let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
        model.fit(&spec()).unwrap();
        assert!(model
            .tune(&spec(), "SELECT n, k AS k, 1.0 AS w FROM l", &[])
            .is_err());
    }

    #[test]
    fn default_grid_has_18_points() {
        assert_eq!(default_grid().len(), 18);
    }
}
