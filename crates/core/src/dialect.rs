//! SQL dialect abstraction.
//!
//! The paper's portability claim is that every BornSQL operation is plain
//! standard SQL, with only two engine-specific spots: the upsert syntax used
//! for incremental learning and the power function's name. This module
//! captures those differences so the generator can emit text for
//! PostgreSQL-, MySQL-, and SQLite-flavoured engines as well as for the
//! bundled `sqlengine` (which speaks the PostgreSQL-style `ON CONFLICT`).
//!
//! Only [`Dialect::Generic`] is *executed* in this workspace; the other
//! emitters are golden-tested as text, mirroring how the paper's Python
//! package renders queries per backend.

/// Target SQL dialect for query generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dialect {
    /// The bundled engine (PostgreSQL-style syntax). This is the executable
    /// dialect.
    #[default]
    Generic,
    /// PostgreSQL text output.
    Postgres,
    /// MySQL text output (`ON DUPLICATE KEY UPDATE`, `VALUES()`).
    MySql,
    /// SQLite text output (`ON CONFLICT`, like PostgreSQL).
    Sqlite,
}

impl Dialect {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Dialect::Generic => "generic",
            Dialect::Postgres => "postgresql",
            Dialect::MySql => "mysql",
            Dialect::Sqlite => "sqlite",
        }
    }

    /// The power function: `POW` everywhere except PostgreSQL's `POWER`
    /// (PostgreSQL accepts both; we emit the canonical one per engine).
    pub fn pow(&self) -> &'static str {
        match self {
            Dialect::Postgres => "POWER",
            _ => "POW",
        }
    }

    /// Render the upsert tail appended to
    /// `INSERT INTO {table} (j, k, w) <select>` so that conflicting `(j, k)`
    /// rows accumulate `w` — the paper's incremental-learning statement
    /// (Section 3.2).
    pub fn upsert_accumulate(&self, table: &str) -> String {
        match self {
            Dialect::MySql => {
                // MySQL has no ON CONFLICT; the equivalent idiom:
                format!("ON DUPLICATE KEY UPDATE w = {table}.w + VALUES(w)")
            }
            _ => format!("ON CONFLICT (j, k) DO UPDATE SET w = {table}.w + excluded.w"),
        }
    }

    /// Whether this dialect's text can be executed by the bundled engine.
    pub fn executable(&self) -> bool {
        !matches!(self, Dialect::MySql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_syntax_per_dialect() {
        assert!(Dialect::Generic
            .upsert_accumulate("m_corpus")
            .contains("ON CONFLICT (j, k) DO UPDATE"));
        assert!(Dialect::Postgres
            .upsert_accumulate("m_corpus")
            .contains("excluded.w"));
        assert!(Dialect::MySql
            .upsert_accumulate("m_corpus")
            .contains("ON DUPLICATE KEY UPDATE"));
        assert!(Dialect::Sqlite
            .upsert_accumulate("m_corpus")
            .contains("ON CONFLICT"));
    }

    #[test]
    fn pow_function_name() {
        assert_eq!(Dialect::Postgres.pow(), "POWER");
        assert_eq!(Dialect::MySql.pow(), "POW");
        assert_eq!(Dialect::Generic.pow(), "POW");
    }

    #[test]
    fn executability() {
        assert!(Dialect::Generic.executable());
        assert!(Dialect::Postgres.executable());
        assert!(Dialect::Sqlite.executable());
        assert!(!Dialect::MySql.executable());
    }
}
