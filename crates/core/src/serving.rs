//! Model export / import — the paper's "cost-effective model serving"
//! story (§7): a fitted BornSQL model is just a hyper-parameter tuple, the
//! corpus table, and optionally the deployed weights table. This module
//! packages those into a portable JSON artifact that can be imported into
//! any other database (with `weights_only`, the artifact is inference-only
//! and the training corpus is not shipped at all — the storage-reduction
//! option the paper mentions).

use sqlengine::Value;

use crate::error::{BornSqlError, Result};
use crate::model::{BornSqlModel, ModelOptions, Params, SqlBackend};

/// A portable, serializable model artifact.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelArtifact {
    pub name: String,
    pub a: f64,
    pub b: f64,
    pub h: f64,
    /// `(j, k, P_jk)` corpus cells; empty for inference-only artifacts.
    pub corpus: Vec<(String, String, f64)>,
    /// `(j, k, HW_jk)` deployed weights, when the model was deployed.
    pub weights: Vec<(String, String, f64)>,
    /// SQL type of the class column.
    pub class_type: String,
}

fn rows_to_triples(rows: Vec<(Value, Value, f64)>) -> Vec<(String, String, f64)> {
    rows.into_iter()
        .map(|(j, k, w)| (j.to_string(), k.to_string(), w))
        .collect()
}

impl<'c, C: SqlBackend> BornSqlModel<'c, C> {
    /// Export the model as a portable artifact.
    ///
    /// With `weights_only = true` the training corpus is omitted — the
    /// artifact can serve predictions and explanations but cannot be
    /// further trained or unlearned (and is typically much smaller).
    pub fn export_artifact(&self, weights_only: bool) -> Result<ModelArtifact> {
        let params = self.params()?;
        let corpus = if weights_only {
            Vec::new()
        } else {
            rows_to_triples(self.corpus()?)
        };
        let weights = match self.explain_global(None) {
            Ok(w) => rows_to_triples(w),
            Err(_) => Vec::new(), // untrained / undeployable model
        };
        Ok(ModelArtifact {
            name: self.name().to_string(),
            a: params.a,
            b: params.b,
            h: params.h,
            corpus,
            weights,
            class_type: self.class_type().to_string(),
        })
    }

    /// Export as a JSON string.
    pub fn export_json(&self, weights_only: bool) -> Result<String> {
        serde_json::to_string(&self.export_artifact(weights_only)?)
            .map_err(|e| BornSqlError::State(format!("artifact serialization failed: {e}")))
    }
}

impl ModelArtifact {
    /// Parse an artifact from JSON.
    pub fn from_json(json: &str) -> Result<ModelArtifact> {
        serde_json::from_str(json)
            .map_err(|e| BornSqlError::Config(format!("invalid model artifact: {e}")))
    }

    /// Import into a database under `name`, recreating the params row, the
    /// corpus (when present), and the weights table (when present).
    pub fn import_into<'c, C: SqlBackend>(
        &self,
        conn: &'c C,
        name: &str,
    ) -> Result<BornSqlModel<'c, C>> {
        let class_type: &'static str = match self.class_type.as_str() {
            "INTEGER" => "INTEGER",
            _ => "TEXT",
        };
        let model = BornSqlModel::create(
            conn,
            name,
            ModelOptions {
                class_type,
                params: Params {
                    a: self.a,
                    b: self.b,
                    h: self.h,
                },
                ..Default::default()
            },
        )?;
        let quote = |s: &str| format!("'{}'", s.replace('\'', "''"));
        let insert_cells = |table: &str, cells: &[(String, String, f64)]| -> Result<()> {
            for chunk in cells.chunks(512) {
                let values: Vec<String> = chunk
                    .iter()
                    .map(|(j, k, w)| {
                        let k_lit = if class_type == "INTEGER" {
                            k.clone()
                        } else {
                            quote(k)
                        };
                        format!("({}, {}, {})", quote(j), k_lit, w)
                    })
                    .collect();
                conn.execute_sql(&format!(
                    "INSERT INTO {table} (j, k, w) VALUES {}",
                    values.join(", ")
                ))?;
            }
            Ok(())
        };
        if !self.corpus.is_empty() {
            insert_cells(&model.generator().corpus_table(), &self.corpus)?;
        }
        if !self.weights.is_empty() {
            conn.execute_sql(&model.generator().create_weights_table())?;
            insert_cells(&model.generator().weights_table(), &self.weights)?;
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DataSpec;
    use sqlengine::Database;

    fn trained_model(db: &Database) -> BornSqlModel<'_, Database> {
        db.execute_script(
            "CREATE TABLE d (n INTEGER, j TEXT, w REAL);
             CREATE TABLE l (n INTEGER, k TEXT);
             INSERT INTO d VALUES (1, 'robot', 2.0), (1, 'vision', 1.0),
                                  (2, 'poisson', 1.0), (2, 'variance', 2.0);
             INSERT INTO l VALUES (1, 'ai'), (2, 'stats');",
        )
        .unwrap();
        let model = BornSqlModel::create(db, "src", ModelOptions::default()).unwrap();
        model
            .fit(
                &DataSpec::new("SELECT n, j, w FROM d")
                    .with_targets("SELECT n, k AS k, 1.0 AS w FROM l"),
            )
            .unwrap();
        model.deploy().unwrap();
        model
    }

    #[test]
    fn export_import_roundtrip_preserves_predictions() {
        let db = Database::new();
        let model = trained_model(&db);
        let json = model.export_json(false).unwrap();

        let db2 = Database::new();
        db2.execute_script(
            "CREATE TABLE q (n INTEGER, j TEXT, w REAL);
             INSERT INTO q VALUES (7, 'robot', 1.0);",
        )
        .unwrap();
        let imported = ModelArtifact::from_json(&json)
            .unwrap()
            .import_into(&db2, "copy")
            .unwrap();
        let preds = imported
            .predict(&DataSpec::new("SELECT n, j, w FROM q"))
            .unwrap();
        assert_eq!(preds[0].1, Value::text("ai"));
        // The corpus travelled too: further training works.
        assert!(imported.corpus_cells().unwrap() > 0);
    }

    #[test]
    fn weights_only_artifact_is_inference_only() {
        let db = Database::new();
        let model = trained_model(&db);
        let artifact = model.export_artifact(true).unwrap();
        assert!(artifact.corpus.is_empty());
        assert!(!artifact.weights.is_empty());

        let db2 = Database::new();
        db2.execute_script(
            "CREATE TABLE q (n INTEGER, j TEXT, w REAL);
             INSERT INTO q VALUES (7, 'variance', 1.0);",
        )
        .unwrap();
        let imported = artifact.import_into(&db2, "lite").unwrap();
        let preds = imported
            .predict(&DataSpec::new("SELECT n, j, w FROM q"))
            .unwrap();
        assert_eq!(preds[0].1, Value::text("stats"));
        assert_eq!(imported.corpus_cells().unwrap(), 0);
    }

    #[test]
    fn artifact_json_is_stable() {
        let db = Database::new();
        let model = trained_model(&db);
        let a = model.export_json(false).unwrap();
        let b = model.export_json(false).unwrap();
        assert_eq!(a, b, "export must be deterministic");
        assert!(a.contains("\"name\":\"src\""));
    }
}
