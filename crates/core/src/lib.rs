//! # bornsql — the Born classifier in standard SQL
//!
//! Reproduction of *"In-Database Text Classification with BornSQL"*
//! (EDBT 2026). BornSQL expresses the entire machine-learning workflow —
//! training, exact incremental learning, exact unlearning, deployment,
//! inference, and global/local explainability — as standard SQL statements
//! over sparse-tensor relations, so the whole pipeline runs *inside* the
//! database.
//!
//! The crate has two layers:
//!
//! * [`sql::SqlGenerator`] renders every operation as SQL text for a chosen
//!   [`Dialect`] — this is the paper's portability artifact and can be used
//!   standalone (e.g. to inspect or ship the statements to another engine);
//! * [`BornSqlModel`] drives those statements against any [`SqlBackend`]
//!   (the bundled `sqlengine` implements it) and returns typed results.
//!
//! ## Quickstart
//!
//! ```
//! use bornsql::{BornSqlModel, DataSpec, ModelOptions};
//! use sqlengine::Database;
//!
//! let db = Database::new();
//! db.execute_script(
//!     "CREATE TABLE docs (id INTEGER, body TEXT, label TEXT);
//!      INSERT INTO docs VALUES
//!         (1, 'robot vision', 'ai'),
//!         (2, 'poisson variance', 'stats'),
//!         (3, 'robot control', 'ai');",
//! ).unwrap();
//!
//! let model = BornSqlModel::create(&db, "demo", ModelOptions::default()).unwrap();
//! let spec = DataSpec::new(
//!         "SELECT id AS n, 'w:' || body AS j, 1.0 AS w FROM docs")
//!     .with_targets("SELECT id AS n, label AS k, 1.0 AS w FROM docs");
//! model.fit(&spec).unwrap();
//! model.deploy().unwrap();
//!
//! let test = DataSpec::new("SELECT id AS n, 'w:' || body AS j, 1.0 AS w FROM docs")
//!     .with_items("SELECT 1 AS n");
//! let predictions = model.predict(&test).unwrap();
//! assert_eq!(predictions[0].1, sqlengine::Value::text("ai"));
//! ```

#![forbid(unsafe_code)]

pub mod dialect;
pub mod error;
pub mod eval;
pub mod external;
pub mod lint;
pub mod model;
pub mod serving;
pub mod spec;
pub mod sql;

pub use dialect::Dialect;
pub use error::{BornSqlError, Result};
pub use eval::{default_grid, Evaluation};
pub use external::ExternalItem;
pub use lint::{lint_all_dialects, LintFailure, LintReport};
pub use model::{BornSqlModel, ModelOptions, Params, Prediction, Probability, SqlBackend, Weight};
pub use serving::ModelArtifact;
pub use spec::DataSpec;
pub use sql::SqlGenerator;
