//! Umbrella crate for the BornSQL reproduction workspace.
//!
//! Re-exports the individual crates so that examples and integration tests
//! can use a single dependency. See `DESIGN.md` at the repository root for
//! the system inventory and the per-experiment index.

#![forbid(unsafe_code)]

pub use baselines;
pub use born;
pub use bornsql;
pub use datasets;
pub use sqlengine;
pub use textproc;
