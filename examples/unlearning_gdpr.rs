//! Continuous learning and GDPR-style unlearning (paper Sections 2.1 and 7).
//!
//! A stream of user documents arrives in batches; the model is updated
//! incrementally (exact incremental learning, eq. 3). Later one user
//! withdraws consent, and their documents are unlearned (exact unlearning,
//! eq. 6). The example verifies the paper's exactness guarantee: the
//! unlearned model is *identical* to one retrained without that user.
//!
//! Run with: `cargo run --example unlearning_gdpr`

use bornsql::{BornSqlModel, DataSpec, ModelOptions};
use sqlengine::Database;

fn main() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE messages (id INTEGER PRIMARY KEY, user_id INTEGER, body_term TEXT, label TEXT);",
    )
    .unwrap();

    // Three users' labelled messages (normalized: one term per row for
    // brevity; a real schema would use a terms table).
    let rows: &[(i64, i64, &str, &str)] = &[
        (1, 100, "invoice", "billing"),
        (2, 100, "payment", "billing"),
        (3, 100, "refund", "billing"),
        (4, 200, "crash", "support"),
        (5, 200, "error", "support"),
        (6, 200, "bug", "support"),
        (7, 300, "invoice", "billing"),
        (8, 300, "upgrade", "sales"),
        (9, 300, "pricing", "sales"),
    ];
    for (id, user, term, label) in rows {
        db.execute(&format!(
            "INSERT INTO messages VALUES ({id}, {user}, '{term}', '{label}')"
        ))
        .unwrap();
    }

    let model = BornSqlModel::create(&db, "inbox", ModelOptions::default()).unwrap();
    let spec_for = |filter: &str| {
        DataSpec::new("SELECT id AS n, 'term:' || body_term AS j, 1.0 AS w FROM messages")
            .with_targets("SELECT id AS n, label AS k, 1.0 AS w FROM messages")
            .with_items(format!("SELECT id AS n FROM messages WHERE {filter}"))
    };

    // --- Continuous learning: one batch per user, as data arrives. ---
    for user in [100i64, 200, 300] {
        model
            .partial_fit(&spec_for(&format!("user_id = {user}")))
            .unwrap();
        println!(
            "after learning user {user}: {} corpus cells, {} classes",
            model.corpus_cells().unwrap(),
            model.n_classes().unwrap()
        );
    }

    // --- User 300 withdraws consent: unlearn their data. ---
    println!("\nuser 300 invokes the right to be forgotten …");
    model.unlearn(&spec_for("user_id = 300")).unwrap();
    println!(
        "after unlearning: {} corpus cells, {} classes",
        model.corpus_cells().unwrap(),
        model.n_classes().unwrap()
    );

    // --- Exactness check: retrain from scratch without user 300. ---
    let control = BornSqlModel::create(&db, "control", ModelOptions::default()).unwrap();
    control.fit(&spec_for("user_id <> 300")).unwrap();

    let unlearned = model.corpus().unwrap();
    let retrained = control.corpus().unwrap();
    assert_eq!(unlearned.len(), retrained.len(), "corpus sizes must match");
    let max_diff = unlearned
        .iter()
        .zip(&retrained)
        .map(|((_, _, a), (_, _, b))| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |unlearned − retrained| corpus cell difference: {max_diff:.2e}");
    assert!(max_diff < 1e-9, "unlearning must be exact");

    // The "sales" class existed only in user 300's data — it must be gone.
    assert_eq!(model.n_classes().unwrap(), 2);
    println!("'sales' class (known only from user 300) has been forgotten ✓");

    // The model still serves predictions for the remaining users' patterns.
    db.execute_script(
        "CREATE TABLE incoming (id INTEGER, term TEXT);
         INSERT INTO incoming VALUES (999, 'refund');",
    )
    .unwrap();
    model.deploy().unwrap();
    let pred = model
        .predict(&DataSpec::new(
            "SELECT id AS n, 'term:' || term AS j, 1.0 AS w FROM incoming",
        ))
        .unwrap();
    println!("incoming message 999 ('refund') → {}", pred[0].1);
}
