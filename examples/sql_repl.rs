//! An interactive SQL shell over the bundled engine, pre-loaded with a
//! small Scopus-like database and a trained BornSQL model — poke at the
//! paper's tables by hand.
//!
//! Run with: `cargo run --release --example sql_repl`
//! (pipe a script: `echo "SELECT COUNT(*) FROM publication;" | cargo run --example sql_repl`)
//!
//! Meta commands: `.tables`, `.explain <query>`, `.quit`.

use std::io::{BufRead, Write};

use bornsql::{BornSqlModel, DataSpec, ModelOptions};
use datasets::scopus::{self, ScopusConfig};
use sqlengine::Database;

fn main() {
    let db = Database::new();
    eprintln!("loading scopus-like sample (1000 publications) and training model 'demo' ...");
    let data = scopus::generate(&ScopusConfig {
        n_publications: 1_000,
        ..Default::default()
    });
    data.load_into(&db).expect("load");
    let model = BornSqlModel::create(
        &db,
        "demo",
        ModelOptions {
            class_type: "INTEGER",
            ..Default::default()
        },
    )
    .expect("create model");
    let mut spec = DataSpec::default();
    for arm in scopus::qx_arms(false) {
        spec = spec.with_features(arm);
    }
    model.fit(&spec.with_targets(scopus::qy())).expect("fit");
    model.deploy().expect("deploy");
    eprintln!(
        "ready. tables: {}. try:\n  SELECT j, k, w FROM demo_weights ORDER BY w DESC LIMIT 5;\n  .explain SELECT pubname, COUNT(*) FROM publication GROUP BY pubname ORDER BY 2 DESC LIMIT 3;",
        db.table_names().join(", ")
    );

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            eprint!("sql> ");
        } else {
            eprint!("...> ");
        }
        std::io::stderr().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                ".quit" | ".exit" => break,
                ".tables" => {
                    println!("{}", db.table_names().join("\n"));
                    continue;
                }
                t if t.starts_with(".explain ") => {
                    match db.explain(t.trim_start_matches(".explain ")) {
                        Ok(plan) => print!("{plan}"),
                        Err(e) => eprintln!("error: {e}"),
                    }
                    continue;
                }
                "" => continue,
                _ => {}
            }
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue; // accumulate a multi-line statement
        }
        let sql = std::mem::take(&mut buffer);
        match db.execute(sql.trim().trim_end_matches(';')) {
            Ok(sqlengine::StatementResult::Rows(r)) => {
                println!("{}", r.columns.join(" | "));
                for row in &r.rows {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("{}", cells.join(" | "));
                }
                eprintln!("({} rows)", r.rows.len());
            }
            Ok(sqlengine::StatementResult::Affected(n)) => eprintln!("ok ({n} rows affected)"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
