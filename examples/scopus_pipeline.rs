//! The paper's headline scenario: classify scientific publications into
//! subject areas from venue, authors, keywords, and abstract — with the
//! model trained, deployed, and queried entirely in SQL.
//!
//! Mirrors Section 4 of the paper on the synthetic Scopus-like database
//! (see `datasets::scopus` for the simulation details).
//!
//! Run with: `cargo run --release --example scopus_pipeline`

use bornsql::{BornSqlModel, DataSpec, ModelOptions, Params};
use datasets::scopus::{self, ScopusConfig};
use sqlengine::Database;
use std::time::Instant;

fn main() {
    let n = 10_000;
    println!("generating scopus-like database with {n} publications ...");
    let data = scopus::generate(&ScopusConfig {
        n_publications: n,
        ..Default::default()
    });
    let db = Database::new();
    data.load_into(&db).expect("load");
    println!(
        "tables: publication = {} rows, pub_author = {}, pub_keyword = {}, pub_lexeme = {}",
        db.table_rows("publication").unwrap(),
        db.table_rows("pub_author").unwrap(),
        db.table_rows("pub_keyword").unwrap(),
        db.table_rows("pub_lexeme").unwrap(),
    );

    // The model: integer class labels (the 2-digit ASJC macro code).
    let model = BornSqlModel::create(
        &db,
        "scopus",
        ModelOptions {
            class_type: "INTEGER",
            params: Params::default(),
            ..Default::default()
        },
    )
    .expect("create");

    // q_x: four feature families, q_y: asjc / 100 — exactly the paper's
    // Section 4.2 queries. Train on 80% of publications (ids ≢ 0 mod 5).
    let mut train = DataSpec::default();
    for arm in scopus::qx_arms(false) {
        train = train.with_features(arm);
    }
    let train = train
        .with_targets(scopus::qy())
        .with_items("SELECT id AS n FROM publication WHERE id % 5 > 0");

    let t0 = Instant::now();
    model.fit(&train).expect("fit");
    println!(
        "fit in {:.2}s → {} features, {} classes",
        t0.elapsed().as_secs_f64(),
        model.n_features().unwrap(),
        model.n_classes().unwrap()
    );

    let t0 = Instant::now();
    model.deploy().expect("deploy");
    println!("deployed in {:.2}s", t0.elapsed().as_secs_f64());

    // Evaluate on the held-out 20%.
    let mut test = DataSpec::default();
    for arm in scopus::qx_arms(false) {
        test = test.with_features(arm);
    }
    let test = test.with_items("SELECT id AS n FROM publication WHERE id % 5 = 0");
    let t0 = Instant::now();
    let predictions = model.predict(&test).expect("predict");
    let elapsed = t0.elapsed();
    println!(
        "predicted {} items in {:.2}s ({:.2} ms/item)",
        predictions.len(),
        elapsed.as_secs_f64(),
        elapsed.as_secs_f64() * 1000.0 / predictions.len() as f64
    );

    // Accuracy against the true ASJC codes.
    let truth = db
        .query("SELECT id, asjc / 100 FROM publication WHERE id % 5 = 0")
        .unwrap();
    let truth_map: std::collections::HashMap<i64, i64> = truth
        .rows
        .iter()
        .map(|r| {
            (
                r[0].as_i64().unwrap().unwrap(),
                r[1].as_i64().unwrap().unwrap(),
            )
        })
        .collect();
    let mut hits = 0usize;
    for (n, k) in &predictions {
        let id = n.as_i64().unwrap().unwrap();
        if truth_map.get(&id) == k.as_i64().unwrap().as_ref() {
            hits += 1;
        }
    }
    println!(
        "accuracy: {:.3} ({hits}/{})",
        hits as f64 / predictions.len() as f64,
        predictions.len()
    );

    // Global explanation — the paper's Table 3.
    println!("\ntop global features per class (paper Table 3):");
    let global = model.explain_global(None).unwrap();
    for class in [17i64, 18, 26] {
        let mut shown = 0;
        for (j, k, w) in &global {
            if k.as_i64().ok().flatten() == Some(class) {
                println!("  k={class}  {j}  ({w:.4})");
                shown += 1;
                if shown == 3 {
                    break;
                }
            }
        }
    }

    // Local explanation for one publication — the paper's Table 4.
    println!("\nwhy is publication 13 classified as it is (paper Table 4):");
    let mut one = DataSpec::default();
    for arm in scopus::qx_arms(false) {
        one = one.with_features(arm);
    }
    let one = one.with_items("SELECT 13 AS n");
    for (j, k, w) in model.explain_local(&one, Some(10)).unwrap() {
        println!("  k={k}  {j}  ({w:.6})");
    }
}
