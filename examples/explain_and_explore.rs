//! Exploratory data analysis with explanations (paper Sections 5.4 and 7):
//! using BornSQL's global explanation to spot representation bias in
//! training data *before* it propagates into downstream models.
//!
//! Reproduces the paper's finding that rare `native_country` categories
//! appearing only in the negative class surface immediately in the global
//! explanation — a signal that the data under-represents those groups.
//!
//! Run with: `cargo run --release --example explain_and_explore`

use bornsql::{BornSqlModel, DataSpec, ModelOptions};
use datasets::{adult_like, TabularConfig};
use sqlengine::Database;

fn main() {
    let adult = adult_like(&TabularConfig::new(25_000, 2_026));
    let db = Database::new();
    adult.load_into(&db, "adult").unwrap();

    let model = BornSqlModel::create(&db, "audit", ModelOptions::default()).unwrap();
    model
        .fit(
            &DataSpec::new("SELECT n, j, w FROM adult_features")
                .with_targets("SELECT n, k AS k, 1.0 AS w FROM adult_labels"),
        )
        .unwrap();
    model.deploy().unwrap();

    // For every feature, collect the per-class weights from the global
    // explanation and flag features that have weight for exactly one class —
    // i.e. values never observed with the other outcome.
    let global = model.explain_global(None).unwrap();
    let mut per_feature: std::collections::BTreeMap<String, Vec<(String, f64)>> =
        Default::default();
    for (j, k, w) in &global {
        per_feature
            .entry(j.to_string())
            .or_default()
            .push((k.to_string(), *w));
    }

    println!("features observed under only ONE income class:");
    let mut flagged = 0;
    for (j, classes) in &per_feature {
        if classes.len() == 1 && classes[0].1 > 0.0 {
            let occurrences = db
                .query_scalar(&format!(
                    "SELECT COUNT(*) FROM adult_features WHERE j = '{}'",
                    j.replace('\'', "''")
                ))
                .unwrap();
            println!(
                "  {j} → only '{}' (weight {:.5}, {} training rows)",
                classes[0].0, classes[0].1, occurrences
            );
            flagged += 1;
        }
    }
    if flagged == 0 {
        println!("  (none at this scale/seed)");
    } else {
        println!(
            "\n{flagged} single-class feature(s) found. As the paper notes (§5.4), such\n\
             categories are candidates for under-representation bias: any model\n\
             trained on this data can only ever associate them with one outcome."
        );
    }

    // Contrast: the most *informative* features overall, which is what the
    // classifier actually leans on.
    println!("\nmost informative features overall (top of the global explanation):");
    for (j, k, w) in global.iter().take(8) {
        println!("  {j} → {k} ({w:.5})");
    }

    // And a worked local explanation for one individual.
    println!("\nwhy is item 1 predicted as it is?");
    let one = DataSpec::new("SELECT n, j, w FROM adult_features").with_items("SELECT 1 AS n");
    let pred = model.predict(&one).unwrap();
    if let Some((_, k)) = pred.first() {
        println!("  prediction: {k}");
    }
    for (j, k, w) in model.explain_local(&one, Some(6)).unwrap() {
        println!("  {j} → {k} ({w:.6})");
    }
}
