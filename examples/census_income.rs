//! The paper's Section 5 comparison on census data: BornSQL against the
//! MADlib-style baselines (decision tree, linear SVM, logistic regression)
//! on the Adult-like dataset — runtimes, metrics, and the data-handling
//! contrast (sparse normalized tables vs dense materialization).
//!
//! Run with: `cargo run --release --example census_income`

use baselines::dense::densify_with_vocab;
use baselines::{DecisionTree, DenseClassifier, LinearSvm, LogisticRegression};
use born::{accuracy, macro_prf};
use bornsql::{BornSqlModel, DataSpec, ModelOptions};
use datasets::{adult_like, TabularConfig};
use sqlengine::{Database, Value};
use std::time::Instant;

fn main() {
    // A scaled-down UCI Adult: 8,000 train / 4,000 test (the UCI original
    // is 32,561 / 16,281 — pass a bigger n for full scale).
    let adult = adult_like(&TabularConfig::new(12_000, 7));
    let (train, test) = adult.split_at(8_000);
    let truth: Vec<&str> = test.iter().map(|i| i.label.as_str()).collect();
    println!(
        "adult-like: {} train / {} test, {} one-hot features\n",
        train.len(),
        test.len(),
        adult.n_features()
    );

    // ---------------- BornSQL: works on the normalized tables ----------
    let db = Database::new();
    datasets::SparseDataset {
        name: "adult".into(),
        items: train.to_vec(),
    }
    .load_into(&db, "train")
    .unwrap();
    datasets::SparseDataset {
        name: "adult".into(),
        items: test.to_vec(),
    }
    .load_into(&db, "test")
    .unwrap();

    let model = BornSqlModel::create(&db, "census", ModelOptions::default()).unwrap();
    let t0 = Instant::now();
    model
        .fit(
            &DataSpec::new("SELECT n, j, w FROM train_features")
                .with_targets("SELECT n, k AS k, 1.0 AS w FROM train_labels"),
        )
        .unwrap();
    let fit_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    model.deploy().unwrap();
    let deploy_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let raw = model
        .predict(&DataSpec::new("SELECT n, j, w FROM test_features"))
        .unwrap();
    let predict_s = t0.elapsed().as_secs_f64();

    let by_id: std::collections::HashMap<i64, String> = raw
        .into_iter()
        .filter_map(|(n, k)| match n {
            Value::Int(id) => Some((id, k.to_string())),
            _ => None,
        })
        .collect();
    let born_preds: Vec<String> = test
        .iter()
        .map(|i| by_id.get(&i.id).cloned().unwrap_or_else(|| "<=50K".into()))
        .collect();

    println!("algorithm  train(s)  deploy/prep(s)  predict(s)  precision  recall  f1");
    let report = |name: &str, tr: f64, pr: f64, pd: f64, preds: &[String]| {
        let refs: Vec<&str> = preds.iter().map(|s| s.as_str()).collect();
        let m = macro_prf(&truth, &refs);
        println!(
            "{name:<10} {tr:>8.3} {pr:>15.3} {pd:>11.3} {:>10.2} {:>7.2} {:>4.2}   (acc {:.3})",
            m.precision,
            m.recall,
            m.f1,
            accuracy(&truth, &refs)
        );
    };
    report("BornSQL", fit_s, deploy_s, predict_s, &born_preds);

    // ------------- Baselines: require dense materialization ------------
    let mut labels: Vec<String> = Vec::new();
    let t0 = Instant::now();
    let dtrain = densify_with_vocab(train, train, &mut labels);
    let dtest = densify_with_vocab(test, train, &mut labels);
    let prep_s = t0.elapsed().as_secs_f64();

    let run = |clf: &mut dyn DenseClassifier| {
        let t0 = Instant::now();
        clf.fit(&dtrain.features, &dtrain.labels, labels.len());
        let tr = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let idx = clf.predict(&dtest.features);
        let pd = t0.elapsed().as_secs_f64();
        let preds: Vec<String> = idx.into_iter().map(|i| labels[i].clone()).collect();
        (tr, pd, preds)
    };
    let mut dt = DecisionTree::default();
    let (tr, pd, preds) = run(&mut dt);
    report("DT", tr, prep_s, pd, &preds);
    let mut svm = LinearSvm::default();
    let (tr, pd, preds) = run(&mut svm);
    report("SVM", tr, prep_s, pd, &preds);
    let mut lr = LogisticRegression::default();
    let (tr, pd, preds) = run(&mut lr);
    report("LR", tr, prep_s, pd, &preds);

    // ------------------- The data-handling contrast --------------------
    println!(
        "\ndense matrix for the baselines: {} × {} = {:.1} MB materialized \
         (BornSQL consumed the {} sparse rows in place)",
        dtrain.n_rows(),
        dtrain.n_features(),
        dtrain.storage_bytes() as f64 / 1e6,
        datasets::SparseDataset {
            name: String::new(),
            items: train.to_vec()
        }
        .nnz(),
    );
}
