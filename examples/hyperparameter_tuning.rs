//! Retraining-free hyper-parameter tuning (paper §2.2.1) and
//! cost-effective model serving (paper §7).
//!
//! The Born classifier's training phase does not depend on `(a, b, h)`, so
//! tuning is a pure deploy-and-score loop over the already-trained corpus.
//! Afterwards the tuned model is exported as a portable artifact and
//! re-imported into a second "serving" database that never saw the
//! training data.
//!
//! Run with: `cargo run --release --example hyperparameter_tuning`

use bornsql::{default_grid, BornSqlModel, DataSpec, ModelArtifact, ModelOptions};
use datasets::newsgroups_like;
use sqlengine::Database;
use std::time::Instant;

fn main() {
    // A 20NG-like corpus, split 70/15/15 into train/validation/test.
    let data = newsgroups_like(4_000, 11);
    let db = Database::new();
    data.load_into(&db, "ng").expect("load");

    let model = BornSqlModel::create(&db, "news", ModelOptions::default()).expect("create");
    let spec_for = |filter: &str| {
        DataSpec::new("SELECT n, j, w FROM ng_features")
            .with_targets("SELECT n, k AS k, 1.0 AS w FROM ng_labels")
            .with_items(format!("SELECT n FROM ng_labels WHERE {filter}"))
    };

    let t0 = Instant::now();
    model.fit(&spec_for("n % 20 < 14")).expect("fit"); // 70 %
    println!(
        "trained once in {:.2}s ({} corpus cells) — tuning never retrains",
        t0.elapsed().as_secs_f64(),
        model.corpus_cells().unwrap()
    );

    // Grid-search on the validation slice.
    let grid = default_grid();
    let qy = "SELECT n, k AS k, 1.0 AS w FROM ng_labels";
    let t0 = Instant::now();
    let (best, val_acc) = model
        .tune(&spec_for("n % 20 >= 14 AND n % 20 < 17"), qy, &grid)
        .expect("tune");
    println!(
        "tuned over {} candidates in {:.2}s → a = {}, b = {}, h = {} (validation accuracy {:.3})",
        grid.len(),
        t0.elapsed().as_secs_f64(),
        best.a,
        best.b,
        best.h,
        val_acc
    );

    // Final score on the held-out test slice.
    let test_eval = model
        .evaluate(&spec_for("n % 20 >= 17"), qy)
        .expect("evaluate");
    println!(
        "test accuracy with tuned parameters: {:.3} ({} items)",
        test_eval.accuracy, test_eval.n_items
    );

    // ------- Serving: ship the tuned model to a fresh database -------
    let artifact = model.export_json(true).expect("export"); // weights only
    println!(
        "\nexported inference-only artifact: {:.1} KB",
        artifact.len() as f64 / 1024.0
    );
    let serving_db = Database::new();
    let served = ModelArtifact::from_json(&artifact)
        .expect("parse artifact")
        .import_into(&serving_db, "news_prod")
        .expect("import");

    // Serve a prediction from the fresh database. The features of one test
    // item are copied over as "incoming traffic".
    let one_item = db
        .export_csv("SELECT n, j, w FROM ng_features WHERE n = 3999")
        .expect("export item");
    serving_db
        .execute("CREATE TABLE incoming (n INTEGER, j TEXT, w REAL)")
        .unwrap();
    serving_db
        .import_csv("incoming", &one_item, true)
        .expect("import item");
    let pred = served
        .predict(&DataSpec::new("SELECT n, j, w FROM incoming"))
        .expect("predict");
    if let Some((n, k)) = pred.first() {
        println!("serving database predicted item {n} → {k}");
    }
}
