//! Quickstart: train, deploy, predict, and explain a BornSQL model on a
//! handful of documents — everything happens inside the SQL database.
//!
//! Run with: `cargo run --example quickstart`

use bornsql::{BornSqlModel, DataSpec, ModelOptions};
use sqlengine::Database;

fn main() {
    // 1. An ordinary relational database with normalized text data.
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE docs (id INTEGER PRIMARY KEY, label TEXT);
         CREATE TABLE doc_terms (doc_id INTEGER, term TEXT, cnt REAL);
         INSERT INTO docs VALUES
            (1, 'ai'), (2, 'ai'), (3, 'stats'), (4, 'stats'), (5, 'ops');
         INSERT INTO doc_terms VALUES
            (1, 'robot', 2.0), (1, 'neural', 1.0),
            (2, 'neural', 1.0), (2, 'vision', 2.0),
            (3, 'variance', 2.0), (3, 'poisson', 1.0),
            (4, 'sample', 1.0), (4, 'variance', 1.0),
            (5, 'queue', 1.0), (5, 'inventory', 2.0);",
    )
    .expect("schema + data");

    // 2. Create a model. Its whole state lives in database tables.
    let model =
        BornSqlModel::create(&db, "quickstart", ModelOptions::default()).expect("create model");

    // 3. Describe where features and targets come from — plain SQL, the
    //    paper's q_x and q_y queries.
    let train = DataSpec::new("SELECT doc_id AS n, 'term:' || term AS j, cnt AS w FROM doc_terms")
        .with_targets("SELECT id AS n, label AS k, 1.0 AS w FROM docs");
    model.fit(&train).expect("fit");
    println!(
        "trained: {} features × {} classes ({} corpus cells)",
        model.n_features().unwrap(),
        model.n_classes().unwrap(),
        model.corpus_cells().unwrap()
    );

    // 4. Deploy (pre-compute the cached weights) to accelerate inference.
    model.deploy().expect("deploy");

    // 5. Predict a brand-new item: write its features to a temp table.
    db.execute_script(
        "CREATE TABLE new_doc (doc_id INTEGER, term TEXT, cnt REAL);
         INSERT INTO new_doc VALUES (100, 'robot', 1.0), (100, 'vision', 1.0);",
    )
    .unwrap();
    let test = DataSpec::new("SELECT doc_id AS n, 'term:' || term AS j, cnt AS w FROM new_doc");
    let predictions = model.predict(&test).expect("predict");
    for (n, k) in &predictions {
        println!("item {n} → predicted class {k}");
    }

    // 6. Probabilities and explanations.
    for (n, k, p) in model.predict_proba(&test).expect("proba") {
        println!("item {n}: P(class = {k}) = {p:.3}");
    }
    println!("\ntop global feature weights:");
    for (j, k, w) in model.explain_global(Some(5)).expect("explain") {
        println!("  {j} → {k}: {w:.4}");
    }
    println!("\nwhy was item 100 classified that way?");
    for (j, k, w) in model.explain_local(&test, Some(5)).expect("explain local") {
        println!("  {j} → {k}: {w:.4}");
    }
}
