#!/usr/bin/env python3
"""Diff a fresh BENCH_results.json against the checked-in BENCH_baseline.json.

Three serving-critical latency metrics are gated: a regression of more
than the threshold (default 25%) fails the build. Every other shared
metric is informational — the script always prints a comparison table so
CI logs show drift long before it trips the gate.

Usage:
    tools/bench_regression.py [--results PATH] [--baseline PATH]
                              [--threshold PCT]

Exit status: 0 on pass, 1 when a gated metric regressed, 2 on bad input.
Stdlib only; the CI runner has no third-party Python packages.
"""

import argparse
import json
import sys

# (section, metric) pairs where "bigger" means "slower" and a sustained
# regression is a release blocker. Keep in sync with DESIGN.md
# ("Observability" → bench summaries).
GATED = [
    ("serving_parameterized", "cached_us"),
    ("predict_batched", "batch_per_item_us"),
    ("columnar_vectorized", "vectorized_us"),
]


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--results", default="BENCH_results.json")
    ap.add_argument("--baseline", default="BENCH_baseline.json")
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="max allowed regression for gated metrics, percent")
    args = ap.parse_args()

    results = load(args.results)
    baseline = load(args.baseline)

    rows = []
    failures = []
    for section in sorted(set(baseline) & set(results)):
        base_sec, res_sec = baseline[section], results[section]
        for metric in sorted(set(base_sec) & set(res_sec)):
            base, fresh = base_sec[metric], res_sec[metric]
            delta = (fresh - base) / base * 100.0 if base else 0.0
            gated = (section, metric) in GATED
            rows.append((f"{section}.{metric}", base, fresh, delta, gated))
            if gated and delta > args.threshold:
                failures.append((f"{section}.{metric}", base, fresh, delta))

    if not rows:
        print("error: baseline and results share no metrics", file=sys.stderr)
        sys.exit(2)

    missing = [f"{s}.{m}" for s, m in GATED
               if m not in results.get(s, {}) or m not in baseline.get(s, {})]
    if missing:
        print(f"error: gated metrics absent: {', '.join(missing)}",
              file=sys.stderr)
        sys.exit(2)

    name_w = max(len(r[0]) for r in rows)
    print(f"{'metric':<{name_w}}  {'baseline':>12}  {'current':>12}  "
          f"{'delta':>8}  gate")
    for name, base, fresh, delta, gated in rows:
        mark = "GATED" if gated else ""
        print(f"{name:<{name_w}}  {base:>12.3f}  {fresh:>12.3f}  "
              f"{delta:>+7.1f}%  {mark}")

    if failures:
        print()
        for name, base, fresh, delta in failures:
            print(f"FAIL: {name} regressed {delta:+.1f}% "
                  f"({base:.3f} -> {fresh:.3f}), threshold "
                  f"{args.threshold:.0f}%", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench-regression: all gated metrics within "
          f"{args.threshold:.0f}% of baseline")


if __name__ == "__main__":
    main()
